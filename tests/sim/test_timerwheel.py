"""Unit tests for the calendar-queue timer wheel.

The wheel's correctness contract is deliberately narrow: it may refuse any
entry (the environment's heap is always a correct fallback), but every
entry it *accepts* must come back in ``(time, key)`` order.  These tests
pin that contract plus the geometry details (power-of-two validation,
current-tick refusal, horizon, wrap-around, idle resync) directly;
``test_properties.py`` then proves the composed kernel differentially
against the frozen seed scheduler.
"""

import pytest

from repro.sim import Environment
from repro.sim.errors import EmptySchedule
from repro.sim.timerwheel import TimerWheel


def _drain(wheel):
    out = []
    while wheel.head() is not None:
        out.append(wheel.pop())
    return out


def test_nslots_must_be_a_power_of_two():
    for bad in (0, 1, 3, 12, 1000):
        with pytest.raises(ValueError):
            TimerWheel(nslots=bad)
    TimerWheel(nslots=2)  # smallest legal wheel


def test_push_refuses_current_tick_past_and_beyond_horizon():
    # tick = 0.25 s, 8 slots -> horizon 2 s with the cursor at tick 0.
    w = TimerWheel(0.0, tick_bits=2, nslots=8)
    assert not w.push(0.1, 1, "current-tick", now=0.0)
    assert not w.push(-1.0, 2, "past", now=0.0)
    assert not w.push(2.0, 3, "at-horizon", now=0.0)
    assert not w.push(50.0, 4, "far-future", now=0.0)
    assert len(w) == 0
    assert w.push(0.5, 5, "in-horizon", now=0.0)
    assert w.push(1.75, 6, "last-slot", now=0.0)
    assert len(w) == 2


def test_serves_entries_in_time_then_key_order():
    w = TimerWheel(0.0, tick_bits=2, nslots=8)
    assert w.push(1.0, 5, "c", now=0.0)
    assert w.push(0.3, 7, "b", now=0.0)
    assert w.push(0.3, 2, "a", now=0.0)
    got = []
    while w:
        head = w.head()
        assert head == w.pop()
        got.append(head)
    assert got == [(0.3, 2, "a"), (0.3, 7, "b"), (1.0, 5, "c")]


def test_same_slot_orders_by_time_before_key():
    # 0.26 and 0.30 both bucket into tick 1 (0.25 s tick); the later push
    # has the smaller fire time and must still come out first.
    w = TimerWheel(0.0, tick_bits=2, nslots=8)
    w.push(0.30, 1, "later", now=0.0)
    w.push(0.26, 2, "earlier", now=0.0)
    assert _drain(w) == [(0.26, 2, "earlier"), (0.30, 1, "later")]


def test_len_and_bool_track_the_drain_buffer():
    w = TimerWheel(0.0, tick_bits=2, nslots=8)
    w.push(0.3, 1, "a", now=0.0)
    w.push(0.3, 2, "b", now=0.0)
    assert len(w) == 2 and w
    w.head()  # sorts the slot into the drain buffer
    assert len(w) == 2 and w
    w.pop()
    assert len(w) == 1 and w
    w.pop()
    assert len(w) == 0 and not w
    assert w.head() is None
    assert w.head() is None  # idempotent on an empty wheel


def test_wraps_around_the_slot_array():
    # tick = 1 s, 4 slots: ticks 5..6 reuse the slot lists of ticks 1..2.
    w = TimerWheel(0.0, tick_bits=0, nslots=4)
    for t, key in [(1.0, 1), (2.0, 2), (3.0, 3)]:
        assert w.push(float(t), key, key, now=0.0)
    assert _drain(w) == [(1.0, 1, 1), (2.0, 2, 2), (3.0, 3, 3)]
    # Cursor now sits at tick 3; 5.0 and 6.0 are in-horizon again and land
    # in the recycled slots.
    assert w.push(6.0, 5, "f", now=3.0)
    assert w.push(5.0, 4, "e", now=3.0)
    assert _drain(w) == [(5.0, 4, "e"), (6.0, 5, "f")]


def test_idle_wheel_resyncs_cursor_to_now():
    w = TimerWheel(0.0, tick_bits=0, nslots=4)
    # Far beyond the horizon while the cursor is at 0: refused.
    assert not w.push(1000.0, 1, "far", now=0.0)
    # After the simulation ran heap-only to t=999 the idle wheel snaps its
    # cursor forward, and the same fire time is suddenly in-horizon.
    assert w.push(1000.0, 2, "near", now=999.0)
    assert _drain(w) == [(1000.0, 2, "near")]


def test_pending_entries_pin_the_cursor():
    w = TimerWheel(0.0, tick_bits=0, nslots=4)
    assert w.push(1.0, 1, "a", now=0.0)
    # A pending entry forbids the resync — snapping forward would strand
    # "a" behind the cursor.
    assert not w.push(1000.0, 2, "b", now=999.0)
    assert _drain(w) == [(1.0, 1, "a")]


# ---------------------------------------------------------------------------
# The wheel inside the Environment
# ---------------------------------------------------------------------------

def test_peek_merges_wheel_and_heap_heads():
    env = Environment()
    env.timeout(5.0)  # beyond the 1 s horizon -> heap
    assert env.peek() == 5.0
    env.timeout(0.5)  # in-horizon -> wheel
    assert env.peek() == 0.5
    env.timeout(0.0)  # immediate deque beats both
    assert env.peek() == env.now


def test_step_drains_in_the_same_order_as_run():
    """step() uses the un-inlined _pop(); it must agree with the run loop."""
    def schedule(env, log):
        def proc(i, d):
            yield env.timeout(d)
            log.append((env.now, i))
        for i, d in enumerate([0.5, 0.0, 5.0, 0.5, 2.0 ** -11, 70.0]):
            env.process(proc(i, d))

    env_run = Environment()
    log_run = []
    schedule(env_run, log_run)
    env_run.run()

    env_step = Environment()
    log_step = []
    schedule(env_step, log_step)
    while True:
        try:
            env_step.step()
        except EmptySchedule:
            break
    assert log_step == log_run
    assert env_step.now == env_run.now


def test_tick_knobs_change_the_container_not_the_order():
    """Every (tick_bits, wheel_slots) sizing must produce the identical
    schedule — the knobs only move events between wheel and heap."""
    def run(**kwargs):
        env = Environment(**kwargs)
        log = []

        def proc(i, d1, d2):
            yield env.timeout(d1)
            log.append((env.now, i, 0))
            yield env.timeout(d2)
            log.append((env.now, i, 1))

        delays = [0.0, 2.0 ** -11, 2.0 ** -10, 0.25, 0.999, 1.0, 1.5, 70.0]
        for i, d1 in enumerate(delays):
            env.process(proc(i, d1, delays[-1 - i]))
        env.run()
        return env.now, log

    baseline = run()
    assert run(tick_bits=2, wheel_slots=8) == baseline
    assert run(tick_bits=0, wheel_slots=2) == baseline
    assert run(tick_bits=16, wheel_slots=4096) == baseline


def test_environment_rejects_non_power_of_two_wheel():
    with pytest.raises(ValueError):
        Environment(wheel_slots=1000)
