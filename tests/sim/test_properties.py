"""Property-based tests of the simulation kernel invariants.

The second half of this module tests the *scheduler* itself: the optimized
heap + immediate-deque kernel must preserve the seed kernel's semantics
exactly.  Each differential test builds a randomized process graph
(timeouts with colliding fire times, event handoffs, interrupts, condition
events) and runs it on both :mod:`repro.sim` and the frozen reference
kernel :mod:`repro.sim.seedref`, requiring bit-identical traces.
"""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import CPUPool, Environment, Interrupt, SharedBandwidth, WorkerPool
from repro.sim import seedref
from repro.sim.rng import derive_seed, make_rng


@given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_timeouts_finish_at_max_delay(delays):
    env = Environment()
    for d in delays:
        env.timeout(d)
    env.run()
    assert env.now == max(delays)


@given(
    rate=st.floats(min_value=1.0, max_value=1e6),
    amounts=st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=1, max_size=10),
)
@settings(max_examples=60, deadline=None)
def test_shared_bandwidth_conserves_work(rate, amounts):
    """Total simulated time must be exactly total work / rate when all flows
    start together (work conservation of fair sharing)."""
    env = Environment()
    link = SharedBandwidth(env, rate=rate)

    def proc(amount):
        yield link.transfer(amount)

    for amount in amounts:
        env.process(proc(amount))
    env.run()
    assert math.isclose(env.now, sum(amounts) / rate, rel_tol=1e-6)
    assert math.isclose(link.total_transferred, sum(amounts), rel_tol=1e-9)


@given(
    rate=st.floats(min_value=1.0, max_value=1e4),
    amounts=st.lists(st.floats(min_value=1.0, max_value=1e4), min_size=2, max_size=8),
    delays=st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=2, max_size=8),
)
@settings(max_examples=60, deadline=None)
def test_shared_bandwidth_never_beats_dedicated_link(rate, amounts, delays):
    """No flow may finish earlier than it would on a dedicated link."""
    n = min(len(amounts), len(delays))
    amounts, delays = amounts[:n], delays[:n]
    env = Environment()
    link = SharedBandwidth(env, rate=rate)
    records = []

    def proc(amount, delay):
        yield env.timeout(delay)
        rec = yield link.transfer(amount)
        records.append((amount, delay, rec))

    for amount, delay in zip(amounts, delays):
        env.process(proc(amount, delay))
    env.run()
    assert len(records) == n
    for amount, delay, rec in records:
        dedicated = amount / rate
        assert rec.end >= delay + dedicated - 1e-9
        assert rec.start >= delay - 1e-9


@given(
    cores=st.integers(min_value=1, max_value=16),
    tasks=st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=24),
)
@settings(max_examples=50, deadline=None)
def test_cpu_pool_makespan_bounds(cores, tasks):
    """Makespan is bounded below by max(total/cores, longest task)."""
    env = Environment()
    cpu = CPUPool(env, cores=cores)

    def proc(work):
        yield cpu.compute(work)

    for work in tasks:
        env.process(proc(work))
    env.run()
    lower = max(sum(tasks) / cores, max(tasks))
    assert env.now >= lower - 1e-9
    # Fair sharing with simultaneous arrivals is work conserving:
    assert env.now <= sum(tasks) + 1e-9


@given(
    workers=st.integers(min_value=1, max_value=8),
    durations=st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=30),
)
@settings(max_examples=50, deadline=None)
def test_worker_pool_completes_all_jobs(workers, durations):
    env = Environment()
    pool = WorkerPool(env, workers=workers)

    def make(d):
        def task():
            yield env.timeout(d)
            return d
        return task

    jobs = [pool.submit(make(d)) for d in durations]
    env.run(until=env.all_of([j.done for j in jobs]))
    assert pool.completed_jobs == len(durations)
    # A FIFO pool cannot be faster than greedy list scheduling lower bound.
    assert env.now >= max(durations) - 1e-9
    assert env.now >= sum(durations) / workers - 1e-9


@given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20))
@settings(max_examples=100, deadline=None)
def test_derive_seed_is_stable_and_distinct(base, name):
    assert derive_seed(base, name) == derive_seed(base, name)
    assert derive_seed(base, name) != derive_seed(base, name + "-other")


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=30, deadline=None)
def test_make_rng_reproducible(seed):
    a = make_rng(seed, "component").random(8)
    b = make_rng(seed, "component").random(8)
    assert (a == b).all()


# ---------------------------------------------------------------------------
# Scheduler-order properties of the optimized kernel
# ---------------------------------------------------------------------------

#: Quantized delays so hypothesis-generated schedules collide on the same
#: simulated timestamps (the interesting case for FIFO tie-breaking).
_QUANTIZED = st.sampled_from([0.0, 0.25, 0.5, 1.0, 1.5, 2.0])


@given(st.lists(_QUANTIZED, min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_events_fire_in_nondecreasing_time_order(delays):
    env = Environment()
    fired = []

    def waiter(d):
        yield env.timeout(d)
        fired.append(env.now)

    for d in delays:
        env.process(waiter(d))
    env.run()
    assert len(fired) == len(delays)
    assert fired == sorted(fired)


@given(st.lists(_QUANTIZED, min_size=2, max_size=40))
@settings(max_examples=60, deadline=None)
def test_fifo_among_equal_timestamps(delays):
    """Events scheduled for the same time fire in scheduling order."""
    env = Environment()
    order = []

    def waiter(i, d):
        yield env.timeout(d)
        order.append((env.now, i))

    for i, d in enumerate(delays):
        env.process(waiter(i, d))
    env.run()
    # Stable sort by fire time must reproduce the observed order exactly:
    # among equal timestamps the earlier-scheduled process resumes first.
    assert order == sorted(order, key=lambda pair: pair[0])


@given(st.integers(min_value=1, max_value=30))
@settings(max_examples=30, deadline=None)
def test_fifo_among_immediate_events(n):
    """Zero-delay (deque fast path) events preserve trigger order."""
    env = Environment()
    order = []

    def waiter(i, ev):
        yield ev
        order.append(i)

    events = [env.event() for _ in range(n)]
    for i, ev in enumerate(events):
        env.process(waiter(i, ev))

    def trigger_all():
        yield env.timeout(1.0)
        for ev in events:
            ev.succeed()

    env.process(trigger_all())
    env.run()
    assert order == list(range(n))


def test_urgent_initializer_preempts_queued_immediates():
    """A newly started process resumes before already-triggered NORMAL
    events at the same timestamp (URGENT beats NORMAL, as in the seed)."""
    for EnvCls in (Environment, seedref.Environment):
        env = EnvCls()
        order = []
        ev = env.event()
        ev.callbacks.append(lambda _e: order.append("normal"))
        ev.succeed()

        def proc():
            order.append("urgent")
            return
            yield  # pragma: no cover

        env.process(proc())
        env.run()
        assert order == ["urgent", "normal"], EnvCls.__module__


def test_mixed_heap_and_deque_ordering_matches_sequence_numbers():
    """Same-timestamp events split across the heap (timeout path) and the
    deque (succeed path) still interleave in global scheduling order."""
    env = Environment()
    order = []

    def at_one(tag):
        def proc():
            yield env.timeout(1.0)
            order.append(tag)
        return proc

    # t0: schedule a at t=1 (heap), b at t=1 (heap).
    env.process(at_one("a")())
    env.process(at_one("b")())

    def trigger_then_timeout():
        yield env.timeout(1.0)
        ev = env.event()

        def waiter():
            yield ev
            order.append("d")

        env.process(waiter())
        ev.succeed()  # deque entry at t=1, scheduled before "e" resumes
        yield env.timeout(0.0)
        order.append("c")

    env.process(trigger_then_timeout())
    env.run()
    # "a", "b" resume first (earlier sequence numbers at t=1); then the
    # trigger process runs, spawns the waiter (URGENT init fires before the
    # already-queued deque entries)... the waiter blocks on ev which is
    # already scheduled, so "d" fires in deque order before the zero-delay
    # timeout "c" scheduled after it.
    assert order == ["a", "b", "d", "c"]
    _assert_same_on_seedref_mixed()


def _assert_same_on_seedref_mixed():
    env = seedref.Environment()
    order = []

    def at_one(tag):
        def proc():
            yield env.timeout(1.0)
            order.append(tag)
        return proc

    env.process(at_one("a")())
    env.process(at_one("b")())

    def trigger_then_timeout():
        yield env.timeout(1.0)
        ev = env.event()

        def waiter():
            yield ev
            order.append("d")

        env.process(waiter())
        ev.succeed()
        yield env.timeout(0.0)
        order.append("c")

    env.process(trigger_then_timeout())
    env.run()
    assert order == ["a", "b", "d", "c"]


# ---------------------------------------------------------------------------
# Timer-wheel schedules: zero-delay / same-tick / cross-tick / overflow
# ---------------------------------------------------------------------------

#: The default wheel tick (``2**-tick_bits`` with ``tick_bits=10``).
_TICK = 2.0 ** -10

#: Delays chosen around the wheel geometry: zero-delay (deque fast path),
#: several sub-tick fractions (collide in one slot, must stay time-then-FIFO
#: ordered), exact and off-by-one tick boundaries, multi-tick hops, the
#: 1-second horizon edge, and far-future delays that spill to the heap.
_WHEEL_DELAYS = st.sampled_from([
    0.0,
    0.25 * _TICK, 0.5 * _TICK, 0.75 * _TICK,
    _TICK, 2.0 * _TICK, 2.5 * _TICK, 17.0 * _TICK,
    1.0 - _TICK, 1.0,
    1.5, 70.0,
])


@given(st.lists(st.tuples(_WHEEL_DELAYS, _WHEEL_DELAYS),
                min_size=1, max_size=25))
@settings(max_examples=60, deadline=None)
def test_wheel_schedules_match_seed_kernel(schedule):
    """Chained timeouts across every wheel regime match the seed exactly.

    Each process sleeps twice, so second-hop timers are created *mid-run*
    from non-zero current times — that exercises slot wrap-around, entries
    landing on the currently-draining tick (heap fallback), and the
    wheel/heap merge at every combination of the delay classes above.
    """
    import repro.sim as optimized

    def run(kernel):
        env = kernel.Environment()
        trace = []

        def proc(i, d1, d2):
            yield env.timeout(d1)
            trace.append((env.now, i, 0))
            yield env.timeout(d2)
            trace.append((env.now, i, 1))

        for i, (d1, d2) in enumerate(schedule):
            env.process(proc(i, d1, d2))
        env.run()
        return env.now, trace

    assert run(optimized) == run(seedref)


@given(st.lists(st.tuples(_WHEEL_DELAYS,
                          st.sampled_from(["spawn", "interrupt", "plain"])),
                min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_wheel_schedules_with_urgent_events_match_seed_kernel(steps):
    """URGENT traffic (process initializers, interrupts) interleaved with
    wheel-resident timers: URGENT events always ride the heap, so this
    pins the merge rule that a heap entry at the same timestamp with a
    smaller key preempts both the wheel head and the immediate deque."""
    import repro.sim as optimized

    def run(kernel):
        env = kernel.Environment()
        trace = []
        handles = []

        def child(i):
            yield env.timeout(0.5 * _TICK)
            trace.append((env.now, "child", i))

        def proc(i, d, action):
            try:
                yield env.timeout(d)
                trace.append((env.now, "first", i))
                if action == "spawn":
                    env.process(child(i))
                elif action == "interrupt":
                    target = handles[(i + 1) % len(handles)]
                    if target.is_alive and target is not env.active_process:
                        target.interrupt(("by", i))
                yield env.timeout(d)
                trace.append((env.now, "second", i))
            except Interrupt as interrupt:
                trace.append((env.now, "intr", i,
                              _normalize_value(interrupt.cause)))

        for i, (d, action) in enumerate(steps):
            handles.append(env.process(proc(i, d, action)))
        try:
            env.run()
        except BaseException as exc:  # noqa: BLE001 - must match seed
            trace.append(("raised", type(exc).__name__,
                          _normalize_args(exc.args)))
        return env.now, trace

    assert run(optimized) == run(seedref)


# ---------------------------------------------------------------------------
# Differential tests: optimized kernel vs. frozen seed kernel
# ---------------------------------------------------------------------------

def _normalize_args(args):
    """Strip memory addresses from exception messages (reprs differ)."""
    import re
    return tuple(re.sub(r"0x[0-9a-f]+", "0x?", a) if isinstance(a, str) else a
                 for a in args)


def _normalize_value(value):
    """Make an event payload comparable across two kernel instances.

    A process interrupted while waiting on a condition can later be
    resumed with the *condition's* value — a mapping keyed by the two
    kernels' own event objects, which never compare equal across kernels
    even when the schedules agree exactly.  Record the ordered payload
    contents instead (callback order is part of the schedule, so the
    ordering itself stays under test); every other payload the graph
    produces is a plain tuple and passes through untouched.
    """
    if isinstance(value, dict):
        return ("condition-value",
                tuple(_normalize_value(v) for v in value.values()))
    return value


def _run_random_graph(kernel, graph_seed):
    """Run a randomized process graph on ``kernel`` and return its trace.

    The graph is derived entirely from ``graph_seed`` *before* the
    simulation starts, so both kernels execute the identical program; the
    trace records every observable scheduling decision.
    """
    env = kernel.Environment()
    rnd = random.Random(graph_seed)
    trace = []

    n_shared = rnd.randint(1, 4)
    shared = [env.event() for _ in range(n_shared)]
    n_procs = rnd.randint(2, 7)
    handles = {}

    # Pre-draw every process's program so execution order cannot influence
    # the random stream.
    programs = []
    for pid in range(n_procs):
        steps = []
        for _ in range(rnd.randint(1, 6)):
            kind = rnd.choice(["timeout", "timeout", "succeed", "wait",
                               "interrupt", "allof", "anyof"])
            if kind == "timeout":
                steps.append(("timeout", rnd.choice([0.0, 0.25, 0.5, 1.0])))
            elif kind == "succeed":
                steps.append(("succeed", rnd.randrange(n_shared)))
            elif kind == "wait":
                steps.append(("wait", rnd.randrange(n_shared)))
            elif kind == "interrupt":
                steps.append(("interrupt", rnd.randrange(n_procs)))
            else:
                steps.append((kind, rnd.choice([0.25, 0.5]),
                              rnd.choice([0.5, 1.0])))
        programs.append(steps)

    def make(pid, steps):
        def proc():
            for sno, step in enumerate(steps):
                kind = step[0]
                try:
                    if kind == "timeout":
                        yield env.timeout(step[1])
                        trace.append((env.now, pid, sno, "t"))
                    elif kind == "succeed":
                        ev = shared[step[1]]
                        if not ev.triggered:
                            ev.succeed((pid, sno))
                        trace.append((env.now, pid, sno, "s"))
                    elif kind == "wait":
                        value = yield shared[step[1]]
                        trace.append((env.now, pid, sno, "w",
                                      _normalize_value(value)))
                    elif kind == "interrupt":
                        target = handles.get(step[1])
                        if (target is not None and target.is_alive
                                and target is not env.active_process):
                            target.interrupt((pid, sno))
                        trace.append((env.now, pid, sno, "i"))
                    elif kind == "allof":
                        yield env.all_of([env.timeout(step[1]),
                                          env.timeout(step[2])])
                        trace.append((env.now, pid, sno, "A"))
                    else:
                        yield env.any_of([env.timeout(step[1]),
                                          env.timeout(step[2])])
                        trace.append((env.now, pid, sno, "O"))
                except Interrupt as interrupt:
                    trace.append((env.now, pid, sno, "X",
                                  _normalize_value(interrupt.cause)))
            return pid
        return proc

    for pid, steps in enumerate(programs):
        handles[pid] = env.process(make(pid, steps)())

    # Fire any leftover shared events late so waiters cannot deadlock.
    def sweeper():
        yield env.timeout(50.0)
        for i, ev in enumerate(shared):
            if not ev.triggered:
                ev.succeed(("sweeper", i))

    env.process(sweeper())
    try:
        env.run()
    except BaseException as exc:  # noqa: BLE001 - deliberate: must match seed
        # An interrupt delivered before a process's first resume (or any
        # other unhandled failure) surfaces from run(); both kernels must
        # stop at the same point with the same exception.
        trace.append((env.now, "raised", type(exc).__name__,
                      _normalize_args(exc.args)))
    trace.append((env.now, "final"))
    for pid, handle in handles.items():
        if not handle.triggered:
            trace.append((pid, "pending"))
        elif handle.ok:
            trace.append((pid, True, handle.value))
        else:
            # Exceptions compare by identity; normalize to type + args.
            trace.append((pid, False, type(handle.value).__name__,
                          _normalize_args(handle.value.args)))
    return trace


@given(st.integers(min_value=0, max_value=2**32))
@settings(max_examples=60, deadline=None)
def test_randomized_graphs_match_seed_kernel(graph_seed):
    import repro.sim as optimized

    fast_trace = _run_random_graph(optimized, graph_seed)
    seed_trace = _run_random_graph(seedref, graph_seed)
    assert fast_trace == seed_trace


class _TinyWheelKernel:
    """Kernel shim with a deliberately undersized timer wheel.

    ``tick_bits=2, wheel_slots=8`` gives a 0.25 s tick and a 2 s horizon,
    so the random graphs (delays up to 1 s, sweeper at 50 s) constantly
    wrap the slot array and spill to the heap — the sizing knobs must change
    only *where* events wait, never the order they fire in.
    """

    @staticmethod
    def Environment():
        from repro.sim import Environment
        return Environment(tick_bits=2, wheel_slots=8)


@given(st.integers(min_value=0, max_value=2**32))
@settings(max_examples=40, deadline=None)
def test_randomized_graphs_match_seed_kernel_on_tiny_wheel(graph_seed):
    fast_trace = _run_random_graph(_TinyWheelKernel, graph_seed)
    seed_trace = _run_random_graph(seedref, graph_seed)
    assert fast_trace == seed_trace


@given(st.integers(min_value=0, max_value=2**32),
       st.floats(min_value=0.1, max_value=20.0))
@settings(max_examples=25, deadline=None)
def test_randomized_graphs_match_seed_kernel_under_until(graph_seed, horizon):
    """run(until=t) stops both kernels at the same point in the same state."""
    import repro.sim as optimized

    def run_until(kernel):
        env = kernel.Environment()
        rnd = random.Random(graph_seed)
        trace = []
        delays = [rnd.choice([0.0, 0.25, 0.5, 1.0, 3.0, 7.0])
                  for _ in range(rnd.randint(1, 25))]

        def waiter(i, d):
            yield env.timeout(d)
            trace.append((env.now, i))

        for i, d in enumerate(delays):
            env.process(waiter(i, d))
        env.run(until=horizon)
        return env.now, trace

    assert run_until(optimized) == run_until(seedref)
