"""Property-based tests of the simulation kernel invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import CPUPool, Environment, SharedBandwidth, WorkerPool
from repro.sim.rng import derive_seed, make_rng


@given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_timeouts_finish_at_max_delay(delays):
    env = Environment()
    for d in delays:
        env.timeout(d)
    env.run()
    assert env.now == max(delays)


@given(
    rate=st.floats(min_value=1.0, max_value=1e6),
    amounts=st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=1, max_size=10),
)
@settings(max_examples=60, deadline=None)
def test_shared_bandwidth_conserves_work(rate, amounts):
    """Total simulated time must be exactly total work / rate when all flows
    start together (work conservation of fair sharing)."""
    env = Environment()
    link = SharedBandwidth(env, rate=rate)

    def proc(amount):
        yield link.transfer(amount)

    for amount in amounts:
        env.process(proc(amount))
    env.run()
    assert math.isclose(env.now, sum(amounts) / rate, rel_tol=1e-6)
    assert math.isclose(link.total_transferred, sum(amounts), rel_tol=1e-9)


@given(
    rate=st.floats(min_value=1.0, max_value=1e4),
    amounts=st.lists(st.floats(min_value=1.0, max_value=1e4), min_size=2, max_size=8),
    delays=st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=2, max_size=8),
)
@settings(max_examples=60, deadline=None)
def test_shared_bandwidth_never_beats_dedicated_link(rate, amounts, delays):
    """No flow may finish earlier than it would on a dedicated link."""
    n = min(len(amounts), len(delays))
    amounts, delays = amounts[:n], delays[:n]
    env = Environment()
    link = SharedBandwidth(env, rate=rate)
    records = []

    def proc(amount, delay):
        yield env.timeout(delay)
        rec = yield link.transfer(amount)
        records.append((amount, delay, rec))

    for amount, delay in zip(amounts, delays):
        env.process(proc(amount, delay))
    env.run()
    assert len(records) == n
    for amount, delay, rec in records:
        dedicated = amount / rate
        assert rec.end >= delay + dedicated - 1e-9
        assert rec.start >= delay - 1e-9


@given(
    cores=st.integers(min_value=1, max_value=16),
    tasks=st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=24),
)
@settings(max_examples=50, deadline=None)
def test_cpu_pool_makespan_bounds(cores, tasks):
    """Makespan is bounded below by max(total/cores, longest task)."""
    env = Environment()
    cpu = CPUPool(env, cores=cores)

    def proc(work):
        yield cpu.compute(work)

    for work in tasks:
        env.process(proc(work))
    env.run()
    lower = max(sum(tasks) / cores, max(tasks))
    assert env.now >= lower - 1e-9
    # Fair sharing with simultaneous arrivals is work conserving:
    assert env.now <= sum(tasks) + 1e-9


@given(
    workers=st.integers(min_value=1, max_value=8),
    durations=st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=30),
)
@settings(max_examples=50, deadline=None)
def test_worker_pool_completes_all_jobs(workers, durations):
    env = Environment()
    pool = WorkerPool(env, workers=workers)

    def make(d):
        def task():
            yield env.timeout(d)
            return d
        return task

    jobs = [pool.submit(make(d)) for d in durations]
    env.run(until=env.all_of([j.done for j in jobs]))
    assert pool.completed_jobs == len(durations)
    # A FIFO pool cannot be faster than greedy list scheduling lower bound.
    assert env.now >= max(durations) - 1e-9
    assert env.now >= sum(durations) / workers - 1e-9


@given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20))
@settings(max_examples=100, deadline=None)
def test_derive_seed_is_stable_and_distinct(base, name):
    assert derive_seed(base, name) == derive_seed(base, name)
    assert derive_seed(base, name) != derive_seed(base, name + "-other")


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=30, deadline=None)
def test_make_rng_reproducible(seed):
    a = make_rng(seed, "component").random(8)
    b = make_rng(seed, "component").random(8)
    assert (a == b).all()
