"""Tests for the simulation environment, events and processes."""

import math

import pytest

from repro.sim import Environment, Interrupt, SimulationError, Timeout
from repro.sim.errors import EmptySchedule


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_starts_at_initial_time():
    env = Environment(initial_time=10.0)
    assert env.now == 10.0


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(5.0)
    env.run()
    assert env.now == 5.0


def test_timeout_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_timeout_nan_delay_rejected():
    # NaN compares false against everything: a `delay < 0` check lets it
    # through and the un-orderable fire time then corrupts the schedule.
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(math.nan)
    with pytest.raises(ValueError):
        Timeout(env, math.nan)


def test_schedule_negative_delay_rejected():
    # Regression: schedule() used to accept negative delays, planting a
    # heap entry in the past and silently breaking the merge invariant
    # that the immediate deque always beats strictly-earlier entries.
    env = Environment()
    with pytest.raises(ValueError):
        env.schedule(env.event(), delay=-0.5)


def test_schedule_nan_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.schedule(env.event(), delay=math.nan)


def test_run_until_time_stops_early():
    env = Environment()
    env.timeout(100.0)
    env.run(until=3.0)
    assert env.now == 3.0


def test_run_until_past_time_rejected():
    env = Environment()
    env.timeout(5.0)
    env.run()
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_process_return_value():
    env = Environment()

    def proc():
        yield env.timeout(1.0)
        return 42

    p = env.process(proc())
    result = env.run(until=p)
    assert result == 42
    assert env.now == 1.0


def test_process_sequencing():
    env = Environment()
    log = []

    def proc(name, delay):
        yield env.timeout(delay)
        log.append((name, env.now))

    env.process(proc("b", 2.0))
    env.process(proc("a", 1.0))
    env.run()
    assert log == [("a", 1.0), ("b", 2.0)]


def test_process_waits_for_other_process():
    env = Environment()

    def child():
        yield env.timeout(3.0)
        return "child-result"

    def parent():
        result = yield env.process(child())
        return result

    p = env.process(parent())
    assert env.run(until=p) == "child-result"
    assert env.now == 3.0


def test_event_succeed_value_propagates():
    env = Environment()
    evt = env.event()

    def waiter():
        value = yield evt
        return value

    def trigger():
        yield env.timeout(1.0)
        evt.succeed("hello")

    p = env.process(waiter())
    env.process(trigger())
    assert env.run(until=p) == "hello"


def test_event_double_trigger_rejected():
    env = Environment()
    evt = env.event()
    evt.succeed(1)
    with pytest.raises(SimulationError):
        evt.succeed(2)


def test_failed_event_raises_in_waiting_process():
    env = Environment()
    evt = env.event()

    def waiter():
        try:
            yield evt
        except RuntimeError as exc:
            return f"caught:{exc}"

    def trigger():
        yield env.timeout(1.0)
        evt.fail(RuntimeError("boom"))

    p = env.process(waiter())
    env.process(trigger())
    assert env.run(until=p) == "caught:boom"


def test_unhandled_process_exception_surfaces_from_run():
    env = Environment()

    def bad():
        yield env.timeout(1.0)
        raise ValueError("broken process")

    env.process(bad())
    with pytest.raises(ValueError, match="broken process"):
        env.run()


def test_yielding_non_event_fails_process():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(SimulationError):
        env.run()


def test_all_of_collects_all_values():
    env = Environment()
    t1 = env.timeout(1.0, value="a")
    t2 = env.timeout(2.0, value="b")

    def proc():
        results = yield env.all_of([t1, t2])
        return sorted(results.values())

    p = env.process(proc())
    assert env.run(until=p) == ["a", "b"]
    assert env.now == 2.0


def test_any_of_fires_on_first():
    env = Environment()
    t1 = env.timeout(1.0, value="fast")
    t2 = env.timeout(5.0, value="slow")

    def proc():
        results = yield env.any_of([t1, t2])
        return list(results.values())

    p = env.process(proc())
    assert env.run(until=p) == ["fast"]
    assert env.now == 1.0


def test_and_or_operators():
    env = Environment()
    t1 = env.timeout(1.0, value=1)
    t2 = env.timeout(2.0, value=2)

    def proc():
        yield t1 & t2
        return env.now

    p = env.process(proc())
    assert env.run(until=p) == 2.0


def test_interrupt_delivered_to_process():
    env = Environment()

    def sleeper():
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            return ("interrupted", interrupt.cause, env.now)

    def interrupter(target):
        yield env.timeout(2.0)
        target.interrupt(cause="stop-now")

    target = env.process(sleeper())
    env.process(interrupter(target))
    result = env.run(until=target)
    assert result == ("interrupted", "stop-now", 2.0)


def test_interrupting_dead_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    p = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_run_until_already_processed_event():
    env = Environment()
    t = env.timeout(1.0, value="x")
    env.run()
    assert env.run(until=t) == "x"


def test_run_until_already_processed_failed_event_raises():
    # Regression: run(until=<processed failed event>) used to *return* the
    # exception instance as the run value instead of raising it, unlike
    # the _stop_on path taken when the target fails during the run.
    env = Environment()

    def bad():
        yield env.timeout(1.0)
        raise RuntimeError("went wrong")

    p = env.process(bad())
    with pytest.raises(RuntimeError, match="went wrong"):
        env.run()
    assert p.processed and not p.ok
    with pytest.raises(RuntimeError, match="went wrong"):
        env.run(until=p)


def test_any_of_second_failure_after_trigger_is_defused():
    # Regression: a sub-event failure arriving after the condition already
    # triggered was never defused, so run() re-raised an exception the
    # condition's waiter had already handled.
    env = Environment()
    e1 = env.event()
    e2 = env.event()

    def waiter():
        try:
            yield env.any_of([e1, e2])
        except RuntimeError as exc:
            return f"caught:{exc}"

    def failer():
        yield env.timeout(1.0)
        e1.fail(RuntimeError("first"))
        e2.fail(RuntimeError("second"))

    p = env.process(waiter())
    env.process(failer())
    assert env.run(until=p) == "caught:first"
    # And the queue drains cleanly afterwards — no orphaned failure left.
    env.run()


def test_wide_all_of_collects_every_value_in_declaration_order():
    # Covers the set-based fired-event tracking in Condition (the old list
    # probe made wide AllOf grids quadratic) and pins that the result dict
    # preserves declaration order, not completion order.
    env = Environment()
    n = 400
    events = [env.timeout(1.0 + (i % 7) * 0.25, value=i) for i in range(n)]

    def proc():
        results = yield env.all_of(events)
        return list(results.values())

    p = env.process(proc())
    assert env.run(until=p) == list(range(n))


def test_timestamps_are_monotonic_across_many_events():
    env = Environment()
    times = []

    def proc(delay):
        yield env.timeout(delay)
        times.append(env.now)

    for d in [5, 1, 3, 2, 4, 0.5, 2.5]:
        env.process(proc(d))
    env.run()
    assert times == sorted(times)
