"""Tests for the fluid fair-sharing bandwidth model and CPU pools."""

import pytest

from repro.sim import CPUPool, Environment, SharedBandwidth


def test_single_flow_gets_full_rate():
    env = Environment()
    link = SharedBandwidth(env, rate=100.0)

    def proc():
        record = yield link.transfer(500.0)
        return record

    p = env.process(proc())
    record = env.run(until=p)
    assert record.duration == pytest.approx(5.0)
    assert env.now == pytest.approx(5.0)


def test_two_equal_flows_share_rate():
    env = Environment()
    link = SharedBandwidth(env, rate=100.0)
    ends = []

    def proc():
        rec = yield link.transfer(100.0)
        ends.append(rec.end)

    env.process(proc())
    env.process(proc())
    env.run()
    # Each flow gets 50 units/s -> both finish at t=2.
    assert ends == [pytest.approx(2.0), pytest.approx(2.0)]


def test_flow_speeds_up_when_other_finishes():
    env = Environment()
    link = SharedBandwidth(env, rate=100.0)
    results = {}

    def small():
        rec = yield link.transfer(100.0)
        results["small"] = rec.end

    def large():
        rec = yield link.transfer(300.0)
        results["large"] = rec.end

    env.process(small())
    env.process(large())
    env.run()
    # Phase 1: both at 50 u/s. small finishes at t=2 with large having 200 left.
    # Phase 2: large alone at 100 u/s -> finishes at t=4.
    assert results["small"] == pytest.approx(2.0)
    assert results["large"] == pytest.approx(4.0)


def test_staggered_flow_arrival():
    env = Environment()
    link = SharedBandwidth(env, rate=100.0)
    results = {}

    def first():
        rec = yield link.transfer(200.0)
        results["first"] = rec.end

    def second():
        yield env.timeout(1.0)
        rec = yield link.transfer(100.0)
        results["second"] = rec.end

    env.process(first())
    env.process(second())
    env.run()
    # t in [0,1): first alone, does 100, has 100 left.
    # t in [1,3): both at 50 -> at t=3 first has 0 and second has 0.
    assert results["first"] == pytest.approx(3.0)
    assert results["second"] == pytest.approx(3.0)


def test_per_flow_cap_limits_single_flow():
    env = Environment()
    link = SharedBandwidth(env, rate=100.0, per_flow_rate=20.0)

    def proc():
        rec = yield link.transfer(100.0)
        return rec.end

    p = env.process(proc())
    assert env.run(until=p) == pytest.approx(5.0)


def test_efficiency_curve_degrades_aggregate():
    # With 2 flows the aggregate drops to half, so each flow gets 25 u/s.
    env = Environment()
    link = SharedBandwidth(
        env, rate=100.0, efficiency=lambda n: 1.0 if n <= 1 else 0.5)
    ends = []

    def proc():
        rec = yield link.transfer(100.0)
        ends.append(rec.end)

    env.process(proc())
    env.process(proc())
    env.run()
    assert ends == [pytest.approx(4.0), pytest.approx(4.0)]


def test_zero_amount_completes_instantly():
    env = Environment()
    link = SharedBandwidth(env, rate=10.0)

    def proc():
        rec = yield link.transfer(0.0)
        return (rec.duration, env.now)

    p = env.process(proc())
    assert env.run(until=p) == (0.0, 0.0)


def test_total_transferred_accumulates():
    env = Environment()
    link = SharedBandwidth(env, rate=10.0)

    def proc(amount):
        yield link.transfer(amount)

    env.process(proc(30.0))
    env.process(proc(70.0))
    env.run()
    assert link.total_transferred == pytest.approx(100.0)


def test_invalid_parameters_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        SharedBandwidth(env, rate=0.0)
    with pytest.raises(ValueError):
        SharedBandwidth(env, rate=1.0, per_flow_rate=0.0)
    link = SharedBandwidth(env, rate=1.0)
    with pytest.raises(ValueError):
        link.transfer(1.0, weight=0.0)


def test_cpu_pool_full_speed_up_to_cores():
    env = Environment()
    cpu = CPUPool(env, cores=4)
    ends = []

    def task():
        rec = yield cpu.compute(2.0)
        ends.append(rec.end)

    for _ in range(4):
        env.process(task())
    env.run()
    assert all(end == pytest.approx(2.0) for end in ends)


def test_cpu_pool_oversubscription_slows_down():
    env = Environment()
    cpu = CPUPool(env, cores=2)
    ends = []

    def task():
        rec = yield cpu.compute(2.0)
        ends.append(rec.end)

    for _ in range(4):
        env.process(task())
    env.run()
    # 4 tasks of 2 core-seconds on 2 cores -> 4 seconds total.
    assert all(end == pytest.approx(4.0) for end in ends)


def test_weighted_sharing():
    env = Environment()
    link = SharedBandwidth(env, rate=90.0)
    results = {}

    def heavy():
        rec = yield link.transfer(120.0, weight=2.0)
        results["heavy"] = rec.end

    def light():
        rec = yield link.transfer(60.0, weight=1.0)
        results["light"] = rec.end

    env.process(heavy())
    env.process(light())
    env.run()
    # Rates: heavy 60 u/s, light 30 u/s -> both finish at t=2.
    assert results["heavy"] == pytest.approx(2.0)
    assert results["light"] == pytest.approx(2.0)
