"""Tests for the simulated worker pool."""

import pytest

from repro.sim import Environment, WorkerPool


def make_task(env, duration, result=None):
    def task():
        yield env.timeout(duration)
        return result
    return task


def test_pool_requires_positive_workers():
    env = Environment()
    with pytest.raises(ValueError):
        WorkerPool(env, workers=0)


def test_single_worker_serializes_tasks():
    env = Environment()
    pool = WorkerPool(env, workers=1)
    jobs = [pool.submit(make_task(env, 2.0, i)) for i in range(3)]
    env.run(until=env.all_of([j.done for j in jobs]))
    assert env.now == pytest.approx(6.0)
    assert [j.done.value for j in jobs] == [0, 1, 2]


def test_parallel_workers_overlap_tasks():
    env = Environment()
    pool = WorkerPool(env, workers=4)
    jobs = [pool.submit(make_task(env, 2.0, i)) for i in range(4)]
    env.run(until=env.all_of([j.done for j in jobs]))
    assert env.now == pytest.approx(2.0)


def test_queue_delay_recorded():
    env = Environment()
    pool = WorkerPool(env, workers=1)
    first = pool.submit(make_task(env, 3.0))
    second = pool.submit(make_task(env, 1.0))
    env.run(until=env.all_of([first.done, second.done]))
    assert first.queue_delay == pytest.approx(0.0)
    assert second.queue_delay == pytest.approx(3.0)


def test_failed_task_fails_job_event():
    env = Environment()
    pool = WorkerPool(env, workers=1)

    def bad():
        yield env.timeout(1.0)
        raise RuntimeError("task exploded")

    job = pool.submit(bad)

    def waiter():
        try:
            yield job.done
        except RuntimeError as exc:
            return str(exc)

    p = env.process(waiter())
    assert env.run(until=p) == "task exploded"


def test_pool_continues_after_failed_task():
    env = Environment()
    pool = WorkerPool(env, workers=1)

    def bad():
        raise RuntimeError("early failure")
        yield  # pragma: no cover - makes this a generator

    bad_job = pool.submit(bad)
    good_job = pool.submit(make_task(env, 1.0, "ok"))

    def waiter():
        try:
            yield bad_job.done
        except RuntimeError:
            pass
        result = yield good_job.done
        return result

    p = env.process(waiter())
    assert env.run(until=p) == "ok"


def test_close_drains_queue_then_stops_workers():
    env = Environment()
    pool = WorkerPool(env, workers=2)
    jobs = [pool.submit(make_task(env, 1.0, i)) for i in range(4)]
    done = pool.close()
    env.run(until=done)
    assert pool.completed_jobs == 4
    assert all(j.done.triggered for j in jobs)
    with pytest.raises(RuntimeError):
        pool.submit(make_task(env, 1.0))


def test_jobs_record_worker_assignment():
    env = Environment()
    pool = WorkerPool(env, workers=2)
    jobs = [pool.submit(make_task(env, 1.0)) for _ in range(4)]
    env.run(until=env.all_of([j.done for j in jobs]))
    workers_used = {j.worker for j in jobs}
    assert workers_used == {0, 1}
