"""Tests for Resource, Container and Store."""

import pytest

from repro.sim import Environment, Resource, Store
from repro.sim.resources import Container


def test_resource_capacity_positive():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    log = []

    def user(name, hold):
        req = res.request()
        yield req
        log.append((name, "acquired", env.now))
        yield env.timeout(hold)
        res.release(req)

    env.process(user("a", 5.0))
    env.process(user("b", 5.0))
    env.process(user("c", 1.0))
    env.run()
    acquire_times = {name: t for name, _, t in log}
    assert acquire_times["a"] == 0.0
    assert acquire_times["b"] == 0.0
    # c waits for one of a/b to release at t=5
    assert acquire_times["c"] == 5.0


def test_resource_release_requires_held_request():
    env = Environment()
    res = Resource(env, capacity=1)

    def proc():
        req = res.request()
        yield req
        res.release(req)
        with pytest.raises(Exception):
            res.release(req)

    env.process(proc())
    env.run()


def test_resource_count_tracks_users():
    env = Environment()
    res = Resource(env, capacity=3)

    def proc():
        req = res.request()
        yield req
        assert res.count >= 1
        yield env.timeout(1.0)
        res.release(req)

    for _ in range(3):
        env.process(proc())
    env.run()
    assert res.count == 0


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        for i in range(5):
            yield store.put(i)
            yield env.timeout(1.0)

    def consumer():
        for _ in range(5):
            item = yield store.get()
            got.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == [0, 1, 2, 3, 4]


def test_store_capacity_blocks_producer():
    env = Environment()
    store = Store(env, capacity=2)
    put_times = []

    def producer():
        for i in range(4):
            yield store.put(i)
            put_times.append(env.now)

    def consumer():
        yield env.timeout(10.0)
        for _ in range(4):
            yield store.get()
            yield env.timeout(10.0)

    env.process(producer())
    env.process(consumer())
    env.run()
    # First two puts succeed immediately; the rest wait for consumer gets.
    assert put_times[0] == 0.0
    assert put_times[1] == 0.0
    assert put_times[2] == 10.0
    assert put_times[3] == 20.0


def test_store_get_blocks_until_item_available():
    env = Environment()
    store = Store(env)
    result = {}

    def consumer():
        item = yield store.get()
        result["time"] = env.now
        result["item"] = item

    def producer():
        yield env.timeout(3.0)
        yield store.put("payload")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert result == {"time": 3.0, "item": "payload"}


def test_store_len_reflects_queued_items():
    env = Environment()
    store = Store(env)

    def proc():
        yield store.put("a")
        yield store.put("b")
        assert len(store) == 2
        yield store.get()
        assert len(store) == 1

    env.process(proc())
    env.run()


def test_container_put_get_levels():
    env = Environment()
    box = Container(env, capacity=10, init=5)

    def proc():
        yield box.get(3)
        assert box.level == 2
        yield box.put(8)
        assert box.level == 10

    env.process(proc())
    env.run()


def test_container_get_blocks_until_level_sufficient():
    env = Environment()
    box = Container(env, capacity=100, init=0)
    times = {}

    def consumer():
        yield box.get(10)
        times["got"] = env.now

    def producer():
        yield env.timeout(4.0)
        yield box.put(10)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert times["got"] == 4.0


def test_container_rejects_invalid_amounts():
    env = Environment()
    box = Container(env, capacity=10)
    with pytest.raises(ValueError):
        box.put(0)
    with pytest.raises(ValueError):
        box.get(-1)
    with pytest.raises(ValueError):
        Container(env, capacity=10, init=20)
