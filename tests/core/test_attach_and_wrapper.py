"""Tests for the runtime attachment and the snapshot middle man."""

import pytest

from repro.core import (
    DarshanMiddleman,
    TfDarshanOptions,
    get_attachment,
)
from repro.tfmini import io_ops
from tests.core.conftest import make_files, run


def test_attach_patches_io_symbols(runtime, os_image, env):
    attachment = get_attachment(runtime)
    assert not attachment.attached
    run(env, attachment.attach())
    assert attachment.attached
    patched = os_image.symbols.patched_symbols()
    for symbol in ("open", "pread", "read", "close", "fwrite", "fopen"):
        assert symbol in patched


def test_attach_is_idempotent(runtime, env):
    attachment = get_attachment(runtime)
    run(env, attachment.attach())
    first_patch_count = len(attachment.patched_symbols)
    run(env, attachment.attach())
    assert len(attachment.patched_symbols) == first_patch_count
    assert attachment.reattach_requests == 1


def test_attach_costs_time(runtime, env):
    attachment = get_attachment(runtime)
    before = env.now
    run(env, attachment.attach())
    assert env.now > before


def test_detach_restores_symbols(runtime, os_image, env):
    attachment = get_attachment(runtime)
    run(env, attachment.attach())
    run(env, attachment.detach())
    assert os_image.symbols.patched_symbols() == []
    assert not attachment.attached


def test_attachment_is_per_runtime_singleton(runtime):
    assert get_attachment(runtime) is get_attachment(runtime)


def test_symbol_selection_respected(runtime, os_image, env):
    options = TfDarshanOptions(symbols=("open", "pread", "close"))
    attachment = get_attachment(runtime, options)
    run(env, attachment.attach())
    patched = os_image.symbols.patched_symbols()
    assert set(patched) == {"open", "pread", "close"}


def test_io_before_attachment_not_counted(runtime, os_image, env):
    """Runtime attachment means earlier I/O is invisible to Darshan."""
    paths = make_files(os_image, 4, 10_000)

    def proc():
        yield from io_ops.read_file(runtime, paths[0])
        attachment = get_attachment(runtime)
        yield from attachment.attach()
        for path in paths[1:]:
            yield from io_ops.read_file(runtime, path)
        return attachment

    attachment = run(env, proc())
    assert attachment.posix_module.file_count() == 3


def test_snapshot_diff_isolates_profiling_window(runtime, os_image, env):
    paths = make_files(os_image, 6, 100_000)

    def proc():
        attachment = get_attachment(runtime)
        yield from attachment.attach()
        middleman = DarshanMiddleman(attachment)
        # Pre-window I/O.
        for path in paths[:2]:
            yield from io_ops.read_file(runtime, path)
        start = yield from middleman.take_snapshot()
        for path in paths[2:5]:
            yield from io_ops.read_file(runtime, path)
        end = yield from middleman.take_snapshot()
        # Post-window I/O must not be visible either.
        yield from io_ops.read_file(runtime, paths[5])
        return middleman.diff(start, end)

    delta = run(env, proc())
    assert delta.total("POSIX", "POSIX_OPENS") == 3
    assert delta.total("POSIX", "POSIX_BYTES_READ") == 300_000
    # Two reads per file (data + zero-length).
    assert delta.total("POSIX", "POSIX_READS") == 6
    assert len(delta.dxt_posix) == 3
    assert delta.duration > 0


def test_snapshot_copies_are_isolated_from_live_records(runtime, os_image, env):
    paths = make_files(os_image, 2, 50_000)

    def proc():
        attachment = get_attachment(runtime)
        yield from attachment.attach()
        middleman = DarshanMiddleman(attachment)
        for path in paths:
            yield from io_ops.read_file(runtime, path)
        snap = yield from middleman.take_snapshot()
        # More I/O after the snapshot must not change the snapshot.
        yield from io_ops.read_file(runtime, paths[0])
        return snap, attachment

    snap, attachment = run(env, proc())
    live_total = attachment.posix_module.total_counter("POSIX_READS")
    snap_total = sum(r.counters["POSIX_READS"] for r in snap.posix.values())
    assert live_total == snap_total + 2  # one extra data read + zero read


def test_runtime_info_exposed_through_middleman(runtime, os_image, env):
    paths = make_files(os_image, 3, 10_000)

    def proc():
        attachment = get_attachment(runtime)
        yield from attachment.attach()
        middleman = DarshanMiddleman(attachment)
        for path in paths:
            yield from io_ops.read_file(runtime, path)
        return middleman.runtime_info()

    info = run(env, proc())
    assert info.file_counts["POSIX"] == 3
    assert info.enabled
