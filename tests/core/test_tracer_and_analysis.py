"""Tests for the DarshanTracer, the in-situ analysis and the TB extension."""

import pytest

from repro.core import (
    DARSHAN_PLANE_NAME,
    StagingAdvisor,
    TfDarshanOptions,
    TfDarshanSession,
    ThreadingAdvisor,
    build_plugin_data,
    enable,
    last_profile,
    zero_length_read_files,
)
from repro.tfmini import Dataset, io_ops
from repro.tfmini.keras import Model, TensorBoard, Variable
from repro.tfmini.profiler import read_trace_json
from tests.core.conftest import make_files, run


def load(runtime, path):
    data = yield from io_ops.read_file(runtime, path)
    return data


def tiny_model():
    model = Model("tiny", [Variable("w", (1000, 10)), Variable("b", (10,))])
    model.per_sample_gpu_time = 1e-4
    return model


def profile_reads(runtime, paths, logdir=None, buffer_size=None):
    """Profile a simple read loop with a TfDarshanSession."""
    session = TfDarshanSession(runtime, logdir=logdir)

    def proc():
        yield from session.start()
        for path in paths:
            yield from io_ops.read_file(runtime, path, buffer_size=buffer_size)
        window = yield from session.stop()
        return window

    window = run(runtime.env, proc())
    return session, window


# -- tracer through the manual API ----------------------------------------------

def test_manual_session_produces_io_profile(runtime, os_image):
    paths = make_files(os_image, 10, 88_000)
    session, window = profile_reads(runtime, paths)
    profile = window.io_profile
    assert profile is not None
    assert profile.posix_opens == 10
    assert profile.posix_reads == 20
    assert profile.zero_byte_reads == 10
    assert profile.posix_bytes_read == 880_000
    assert profile.posix_read_bandwidth > 0
    assert last_profile(runtime) is profile


def test_profile_access_pattern_matches_paper_semantics(runtime, os_image):
    """Whole-file reads: 50% of reads neither sequential nor consecutive."""
    paths = make_files(os_image, 20, 88_000)
    _, window = profile_reads(runtime, paths)
    pattern = window.io_profile.access_pattern
    assert pattern.total_reads == 40
    assert pattern.sequential == 20
    assert pattern.consecutive == 20
    assert pattern.sequential_fraction == pytest.approx(0.5)
    assert pattern.random_fraction == pytest.approx(0.5)


def test_segmented_files_have_mostly_sequential_reads(runtime, os_image):
    """Malware-style multi-segment reads are mostly sequential+consecutive."""
    paths = make_files(os_image, 5, 4_400_000)
    _, window = profile_reads(runtime, paths, buffer_size=1 << 20)
    pattern = window.io_profile.access_pattern
    assert pattern.sequential_fraction > 0.8
    hist = window.io_profile.read_size_histogram
    assert hist.get("100K_1M", 0) + hist.get("1M_4M", 0) >= 20


def test_read_size_histogram_buckets_zero_reads(runtime, os_image):
    paths = make_files(os_image, 8, 88_000)
    _, window = profile_reads(runtime, paths)
    hist = window.io_profile.read_size_histogram
    assert hist["0_100"] == 8
    assert hist["10K_100K"] == 8


def test_file_size_histogram_and_sizes(runtime, os_image):
    make_files(os_image, 4, 500_000, prefix="/data/small")
    make_files(os_image, 3, 5_000_000, prefix="/data/big")
    paths = [i.path for i in os_image.vfs.files_under("/data")]
    _, window = profile_reads(runtime, paths, buffer_size=8 << 20)
    sizes = window.io_profile.file_sizes()
    assert len(sizes) == 7
    assert sum(1 for s in sizes.values() if s < 2_000_000) == 4
    hist = window.io_profile.file_size_histogram
    assert hist.get("100K_1M", 0) == 4
    assert hist.get("4M_10M", 0) == 3


def test_bandwidth_definition_uses_window_duration(runtime, os_image):
    paths = make_files(os_image, 10, 1_000_000)
    session = TfDarshanSession(runtime)

    def proc():
        yield from session.start()
        for path in paths:
            yield from io_ops.read_file(runtime, path)
        # Idle tail inside the window lowers the reported bandwidth.
        yield runtime.env.timeout(1.0)
        window = yield from session.stop()
        return window

    window = run(runtime.env, proc())
    profile = window.io_profile
    assert profile.duration >= 1.0
    assert profile.posix_read_bandwidth == pytest.approx(
        profile.posix_bytes_read / profile.duration)


def test_multiple_windows_report_separate_bandwidths(runtime, os_image):
    """The STREAM validation pattern: restart profiling every few steps."""
    paths = make_files(os_image, 30, 200_000)
    session = TfDarshanSession(runtime)

    def proc():
        for chunk_start in range(0, 30, 10):
            yield from session.start()
            for path in paths[chunk_start:chunk_start + 10]:
                yield from io_ops.read_file(runtime, path)
            yield from session.stop()

    run(runtime.env, proc())
    assert len(session.windows) == 3
    series = session.bandwidth_series()
    assert len(series) == 3
    assert all(bw > 0 for _, bw in series)
    for window in session.windows:
        assert window.io_profile.posix_opens == 10


def test_zero_length_read_files_listed(runtime, os_image):
    paths = make_files(os_image, 5, 50_000)
    _, window = profile_reads(runtime, paths)
    delta = runtime.last_io_delta
    attachment = runtime._tf_darshan_attachment
    files = zero_length_read_files(delta, attachment.core.lookup_name)
    assert sorted(files) == sorted(paths)


def test_darshan_plane_added_to_xspace(runtime, os_image, tmp_path):
    paths = make_files(os_image, 6, 120_000)
    logdir = str(tmp_path / "tb")
    session, _ = profile_reads(runtime, paths, logdir=logdir)
    result = runtime.last_profile
    plane = result.xspace.find_plane(DARSHAN_PLANE_NAME)
    assert plane is not None
    assert plane.stats["num_files"] == 6
    # One timeline per file, and each file's last event is the zero read.
    assert len(plane.lines) == 6
    for line in plane.lines.values():
        assert line.events[-1].metadata["length"] == 0
    # The trace viewer JSON contains the per-file timelines.
    events = read_trace_json(str(tmp_path / "tb" / "trace.json.gz"))
    assert any(e.get("name", "").startswith("pread") for e in events
               if e.get("ph") == "X")


def test_dxt_disabled_skips_trace_plane(runtime, os_image):
    paths = make_files(os_image, 4, 10_000)
    enable(runtime, TfDarshanOptions(enable_dxt=False))
    session = TfDarshanSession(runtime)

    def proc():
        yield from session.start()
        for path in paths:
            yield from io_ops.read_file(runtime, path)
        yield from session.stop()

    run(runtime.env, proc())
    assert runtime.last_profile.xspace.find_plane(DARSHAN_PLANE_NAME) is None
    # Counters still work without DXT.
    assert last_profile(runtime).posix_opens == 4


# -- integration with the Keras TensorBoard callback --------------------------------

def test_tensorboard_callback_includes_darshan(runtime, os_image, tmp_path):
    paths = make_files(os_image, 64, 80_000)
    enable(runtime)
    dataset = Dataset.from_list(paths).map(load).batch(8).prefetch(2)
    callback = TensorBoard(log_dir=str(tmp_path / "tb"), profile_batch=(1, 4))
    model = tiny_model()
    run(runtime.env, model.fit(runtime, dataset, steps_per_epoch=6,
                               callbacks=[callback]))
    profile = last_profile(runtime)
    assert profile is not None
    assert profile.posix_opens > 0
    assert callback.profile_result.xspace.find_plane(DARSHAN_PLANE_NAME) is not None


def test_plugin_data_render_and_write(runtime, os_image, tmp_path):
    paths = make_files(os_image, 12, 100_000)
    session, window = profile_reads(runtime, paths)
    data = session.plugin_data(window, title="unit-test profile")
    text = data.render()
    assert "POSIX opens           : 12" in text
    assert "read bandwidth" in text
    payload = data.to_dict()
    assert payload["posix"]["opens"] == 12
    out = data.write(str(tmp_path / "logs"))
    import json
    with open(out) as handle:
        assert json.load(handle)["posix"]["reads"] == 24


# -- advisors -------------------------------------------------------------------------

def test_staging_advisor_selects_small_files(runtime, os_image):
    make_files(os_image, 40, 800_000, prefix="/data/small")
    make_files(os_image, 60, 7_000_000, prefix="/data/big")
    paths = [i.path for i in os_image.vfs.files_under("/data")]
    _, window = profile_reads(runtime, paths, buffer_size=8 << 20)
    advisor = StagingAdvisor()
    rec = advisor.recommend_from_profile(window.io_profile,
                                         threshold_bytes=2 << 20)
    assert rec.file_count == 40
    assert rec.file_fraction == pytest.approx(0.4)
    assert rec.byte_fraction < 0.1
    assert "stage 40 files" in rec.summary()


def test_staging_advisor_respects_capacity(runtime):
    sizes = {f"/data/f{i}": 1_000_000 for i in range(10)}
    advisor = StagingAdvisor(fast_tier_capacity=3_500_000)
    rec = advisor.recommend(sizes, threshold_bytes=2_000_000)
    assert rec.file_count == 3
    assert rec.staged_bytes <= 3_500_000


def test_staging_threshold_sweep_monotonic(runtime):
    sizes = {f"/data/f{i}": size for i, size in
             enumerate([100_000, 500_000, 1_500_000, 3_000_000, 8_000_000])}
    advisor = StagingAdvisor()
    recs = advisor.sweep(sizes, [200_000, 1_000_000, 2_000_000, 10_000_000])
    counts = [r.file_count for r in recs]
    assert counts == sorted(counts)
    assert counts[-1] == 5


def test_threading_advisor_small_files_increase(runtime, os_image):
    paths = make_files(os_image, 30, 80_000)
    _, window = profile_reads(runtime, paths)
    advisor = ThreadingAdvisor(max_threads=28)
    rec = advisor.recommend(window.io_profile, current_threads=1)
    assert rec.change == "increase"
    assert rec.recommended_threads >= 8


def test_threading_advisor_large_sequential_on_hdd_keeps_one_thread(runtime, os_image):
    paths = make_files(os_image, 6, 6_000_000)
    _, window = profile_reads(runtime, paths, buffer_size=1 << 20)
    advisor = ThreadingAdvisor()
    rec = advisor.recommend(window.io_profile, current_threads=16,
                            rotational_storage=True)
    assert rec.recommended_threads == 1
    assert rec.change == "decrease"
