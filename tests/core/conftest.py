"""Fixtures for tf-Darshan core tests: a runtime over a small SSD platform."""

import pytest

from repro.sim import Environment
from repro.storage import LocalFilesystem, StreamingDevice
from repro.posix import SimulatedOS
from repro.tfmini import TFRuntime
from repro.tfmini.device import GPUDevice


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def os_image(env):
    image = SimulatedOS(env)
    device = StreamingDevice(env, "ssd", read_bandwidth=400e6,
                             write_bandwidth=300e6, latency=40e-6)
    image.mount("/data", LocalFilesystem(env, device, name="ext4(ssd)"))
    return image


@pytest.fixture
def runtime(env, os_image):
    return TFRuntime(env, os_image, cpu_cores=4,
                     gpus=[GPUDevice(env, name="GPU:0")])


def run(env, gen):
    return env.run(until=env.process(gen))


def make_files(os_image, count, size, prefix="/data/train"):
    paths = []
    for i in range(count):
        path = f"{prefix}/sample_{i:05d}.bin"
        os_image.vfs.create_file(path, size=size)
        paths.append(path)
    return paths
