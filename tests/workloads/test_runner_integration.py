"""End-to-end integration tests of the experiment runners (small scales)."""

import pytest

from repro.tools import StreamBenchmark, within_factor
from repro.workloads import (
    greendog,
    run_imagenet_case,
    run_malware_case,
    run_overhead_case,
    run_stream_validation,
)
from repro.workloads.datasets import build_imagenet_dataset

MIB = 1 << 20


def test_malware_case_produces_profile_and_dstat():
    result = run_malware_case(scale=0.02, threads=1, profile="epoch", seed=3)
    assert result.steps > 0
    assert result.io_profile is not None
    # The profile window covers (almost exactly) every sample of the epoch; a
    # couple of files may be opened by the prefetcher before the profiler
    # finishes starting, as in the paper's "approximately 128K files opened".
    expected_opens = result.steps * result.batch_size
    assert abs(result.io_profile.posix_opens - expected_opens) <= 12
    # tf-Darshan and the device counters agree on the volume read.
    assert within_factor(result.io_profile.posix_bytes_read, result.bytes_read, 1.05)
    # dstat saw the same traffic.
    assert within_factor(result.dstat.total_read_bytes, result.bytes_read, 1.05)
    assert result.fit_time > 0


def test_malware_threading_reduces_bandwidth_on_hdd():
    naive = run_malware_case(scale=0.02, threads=1, profile="epoch", seed=3)
    threaded = run_malware_case(scale=0.02, threads=16, profile="epoch", seed=3)
    assert threaded.posix_bandwidth < naive.posix_bandwidth
    assert threaded.fit_time > naive.fit_time


def test_malware_staging_improves_bandwidth():
    naive = run_malware_case(scale=0.02, threads=1, profile="epoch", seed=3)
    staged = run_malware_case(scale=0.02, threads=1, profile="epoch", seed=3,
                              staging_threshold=2 * MIB)
    assert staged.staging is not None
    assert staged.staging.file_count > 0
    assert staged.posix_bandwidth > naive.posix_bandwidth
    assert staged.fit_time < naive.fit_time
    # Staged bytes are a small fraction of the corpus (Section V-B).
    assert staged.staging.staged_bytes < 0.15 * staged.config["dataset_bytes"]


def test_imagenet_threading_improves_bandwidth_on_lustre():
    slow = run_imagenet_case(scale=0.005, threads=1, profile="epoch", seed=3)
    fast = run_imagenet_case(scale=0.005, threads=28, profile="epoch", seed=3)
    assert fast.posix_bandwidth > 3 * slow.posix_bandwidth
    # Twice as many reads as opens: every file ends with a zero-length read.
    assert slow.io_profile.posix_reads == pytest.approx(
        2 * slow.io_profile.posix_opens, abs=8)


def test_imagenet_profile_is_input_bound():
    result = run_imagenet_case(scale=0.005, threads=1, profile="epoch", seed=3)
    # The profile window covers the whole epoch; the runtime recorded steps.
    assert result.io_profile is not None
    assert result.io_profile.zero_byte_reads == pytest.approx(
        result.io_profile.posix_opens, abs=8)


def test_overhead_case_ordering():
    baseline = run_overhead_case("stream_malware", "none", steps=4,
                                 batch_size=32, scale=0.02)
    tf_only = run_overhead_case("stream_malware", "tf", steps=4,
                                batch_size=32, scale=0.02)
    tfdarshan = run_overhead_case("stream_malware", "tfdarshan", steps=4,
                                  batch_size=32, scale=0.02)
    assert baseline <= tf_only <= tfdarshan
    assert tfdarshan / baseline < 1.3


def test_overhead_rejects_bad_arguments():
    with pytest.raises(ValueError):
        run_overhead_case("imagenet", "perf")


def test_stream_validation_tfdarshan_matches_dstat():
    result = run_stream_validation("imagenet", steps=10, batch_size=64,
                                   threads=16, scale=0.01, seed=3)
    assert result.steps == 10
    assert len(result.tfdarshan_series) == 2  # one window per 5 steps
    dstat_rate = result.dstat.mean_read_rate(ignore_idle=True)
    assert within_factor(result.mean_tfdarshan_bandwidth, dstat_rate, 1.5)


def test_stream_profiler_modes():
    with pytest.raises(ValueError):
        platform = greendog()
        StreamBenchmark(platform.runtime, ["/data/x"], profiler="bogus")
    result = run_stream_validation("imagenet", steps=4, batch_size=32,
                                   threads=8, scale=0.01, profiler="none",
                                   seed=3)
    assert result.tfdarshan_series == []
