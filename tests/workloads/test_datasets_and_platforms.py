"""Tests for the synthetic datasets, platforms and tools."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment
from repro.posix import SimulatedOS
from repro.storage import LocalFilesystem, hdd
from repro.tools import DstatMonitor, format_table, within_factor
from repro.workloads import (
    build_imagenet_dataset,
    build_malware_dataset,
    greendog,
    kebnekaise,
    table2_rows,
)

MIB = 1 << 20


@pytest.fixture
def vfs():
    env = Environment()
    image = SimulatedOS(env)
    image.mount("/data", LocalFilesystem(env, hdd(env)))
    return image.vfs


def test_malware_dataset_matches_table2(vfs):
    dataset = build_malware_dataset(vfs, scale=1.0)
    assert dataset.file_count == 10_868
    assert within_factor(dataset.total_bytes, 48e9, 1.1)
    assert 3 * MIB < dataset.median_bytes < 5 * MIB
    # The staging-relevant properties from Section V-B.
    small = dataset.files_below(2 * MIB)
    assert 0.35 < len(small) / dataset.file_count < 0.46
    assert 0.05 < dataset.bytes_below(2 * MIB) / dataset.total_bytes < 0.11


def test_imagenet_dataset_matches_table2(vfs):
    dataset = build_imagenet_dataset(vfs, scale=0.05)
    assert dataset.file_count == 6_400
    assert within_factor(dataset.total_bytes, 11.6e9 * 0.05, 1.1)
    assert 60_000 < dataset.median_bytes < 120_000


def test_dataset_files_registered_in_vfs(vfs):
    dataset = build_imagenet_dataset(vfs, scale=0.001)
    for path in dataset.paths[:5]:
        assert vfs.exists(path)
    assert vfs.total_bytes_under(dataset.root) == dataset.total_bytes


def test_dataset_generation_is_deterministic(vfs):
    env2 = Environment()
    image2 = SimulatedOS(env2)
    image2.mount("/data", LocalFilesystem(env2, hdd(env2)))
    a = build_malware_dataset(vfs, scale=0.01, seed=7)
    b = build_malware_dataset(image2.vfs, scale=0.01, seed=7)
    assert a.sizes == b.sizes


def test_scale_validation(vfs):
    with pytest.raises(ValueError):
        build_imagenet_dataset(vfs, scale=0.0)
    with pytest.raises(ValueError):
        build_malware_dataset(vfs, scale=1.5)


@given(scale=st.floats(min_value=0.005, max_value=0.05))
@settings(max_examples=10, deadline=None)
def test_malware_distribution_shape_holds_at_any_scale(scale):
    env = Environment()
    image = SimulatedOS(env)
    image.mount("/data", LocalFilesystem(env, hdd(env)))
    dataset = build_malware_dataset(image.vfs, scale=scale)
    small_files = len(dataset.files_below(2 * MIB)) / dataset.file_count
    small_bytes = dataset.bytes_below(2 * MIB) / dataset.total_bytes
    assert 0.3 < small_files < 0.52
    assert small_bytes < 0.15
    assert dataset.median_bytes > 1 * MIB


def test_table2_rows_format(vfs):
    rows = table2_rows([build_imagenet_dataset(vfs, scale=0.01),
                        build_malware_dataset(vfs, scale=0.01)])
    assert len(rows) == 2
    assert rows[0][0] == "imagenet"
    text = format_table(["name", "files", "total", "median"], rows)
    assert "malware" in text


def test_greendog_platform_tiers():
    platform = greendog()
    assert platform.rotational_data_tier
    assert platform.fast_tier is not None
    names = {d.name for d in platform.devices()}
    assert {"sda", "nvme0n1"}.issubset(names)
    assert platform.runtime.cpu_cores == 8
    assert len(platform.runtime.gpus) == 1


def test_kebnekaise_platform_lustre():
    platform = kebnekaise()
    assert not platform.rotational_data_tier
    assert platform.data_root == "/lustre"
    assert platform.runtime.cpu_cores == 28
    assert len(platform.runtime.gpus) == 2
    assert any(d.name.startswith("ost") for d in platform.devices())


def test_dstat_monitor_observes_device_traffic():
    platform = greendog()
    env = platform.env
    hdd_fs = platform.backends["hdd"]
    monitor = DstatMonitor(env, platform.devices())
    monitor.start()

    def proc():
        for i in range(5):
            yield from hdd_fs.read(f"file{i}", 0, 50 * MIB, 50 * MIB)

    env.run(until=env.process(proc()))
    monitor.stop()
    series = monitor.series()
    assert series.total_read_bytes == pytest.approx(250 * MIB, rel=0.01)
    assert series.peak_read_rate > 0
    assert "read(MiB/s)" in monitor.render()


def test_dstat_interval_validation():
    platform = greendog()
    with pytest.raises(ValueError):
        DstatMonitor(platform.env, platform.devices(), interval=0)
