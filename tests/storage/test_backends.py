"""Tests for the ext4-like and Lustre-like filesystem backends."""

import pytest

from repro.sim import Environment
from repro.storage import (
    LocalFilesystem,
    LustreFilesystem,
    MountTable,
    PageCache,
    StagingManager,
    StreamingDevice,
    hdd,
    optane_ssd,
)


def run(env, gen):
    return env.run(until=env.process(gen))


# -- LocalFilesystem ---------------------------------------------------------

def test_cold_open_costs_a_metadata_read():
    env = Environment()
    fs = LocalFilesystem(env, hdd(env))

    def proc():
        op = yield from fs.open("fileA", 1000)
        return op

    op = run(env, proc())
    assert op.duration > 1e-3  # a seek-dominated metadata read
    assert fs.device.metrics.metadata_ops == 1


def test_warm_open_is_cheap():
    env = Environment()
    fs = LocalFilesystem(env, hdd(env))

    def proc():
        yield from fs.open("fileA", 1000)
        second = yield from fs.open("fileA", 1000)
        return second

    op = run(env, proc())
    assert op.duration < 1e-4


def test_drop_caches_makes_open_cold_again():
    env = Environment()
    fs = LocalFilesystem(env, hdd(env))

    def proc():
        yield from fs.open("fileA", 1000)
        fs.drop_caches()
        op = yield from fs.open("fileA", 1000)
        return op

    op = run(env, proc())
    assert op.duration > 1e-3


def test_local_read_moves_bytes_on_device():
    env = Environment()
    device = StreamingDevice(env, "ssd", read_bandwidth=100e6, latency=0.0)
    fs = LocalFilesystem(env, device)

    def proc():
        op = yield from fs.read("f", 0, 50_000_000, 50_000_000)
        return op

    op = run(env, proc())
    assert op.nbytes == 50_000_000
    assert op.duration == pytest.approx(0.5, rel=1e-6)
    assert device.metrics.bytes_read == 50_000_000


def test_local_zero_byte_read_costs_nothing_on_device():
    env = Environment()
    device = StreamingDevice(env, "ssd", read_bandwidth=100e6, latency=1e-3)
    fs = LocalFilesystem(env, device)

    def proc():
        op = yield from fs.read("f", 100, 0, 100)
        return op

    op = run(env, proc())
    assert op.nbytes == 0
    assert device.metrics.read_ops == 0


# -- LustreFilesystem ---------------------------------------------------------

def test_lustre_open_serializes_on_mds():
    env = Environment()
    fs = LustreFilesystem(env, n_osts=2, mds_latency=2e-3, mds_concurrency=1)
    done = []

    def opener(key):
        yield from fs.open(key, 1000)
        done.append(env.now)

    for i in range(4):
        env.process(opener(f"file{i}"))
    env.run()
    assert max(done) == pytest.approx(8e-3, rel=1e-6)
    assert fs.mds_requests == 4


def test_lustre_cached_open_skips_mds():
    env = Environment()
    fs = LustreFilesystem(env, n_osts=2, mds_latency=2e-3)

    def proc():
        yield from fs.open("f", 10)
        yield from fs.open("f", 10)

    run(env, proc())
    assert fs.mds_requests == 1


def test_lustre_read_splits_into_stripes():
    env = Environment()
    fs = LustreFilesystem(env, n_osts=4, stripe_size=1 << 20, stripe_count=1)

    def proc():
        op = yield from fs.read("f", 0, 3 * (1 << 20), 3 * (1 << 20))
        return op

    op = run(env, proc())
    assert op.device_ops == 3
    total_ost_bytes = sum(d.metrics.bytes_read for d in fs.devices)
    assert total_ost_bytes == 3 * (1 << 20)


def test_lustre_single_stripe_count_keeps_file_on_one_ost():
    env = Environment()
    fs = LustreFilesystem(env, n_osts=4, stripe_size=1 << 20, stripe_count=1)

    def proc():
        yield from fs.read("f", 0, 4 * (1 << 20), 4 * (1 << 20))

    run(env, proc())
    osts_used = [d for d in fs.devices if d.metrics.bytes_read > 0]
    assert len(osts_used) == 1


def test_lustre_striped_file_spreads_over_osts():
    env = Environment()
    fs = LustreFilesystem(env, n_osts=4, stripe_size=1 << 20, stripe_count=4)

    def proc():
        yield from fs.read("f", 0, 4 * (1 << 20), 4 * (1 << 20))

    run(env, proc())
    osts_used = [d for d in fs.devices if d.metrics.bytes_read > 0]
    assert len(osts_used) == 4


def test_lustre_requires_an_ost():
    env = Environment()
    with pytest.raises(ValueError):
        LustreFilesystem(env, osts=[])


# -- MountTable / staging -----------------------------------------------------

def test_mount_table_longest_prefix_wins():
    env = Environment()
    slow = LocalFilesystem(env, hdd(env), name="slow")
    fast = LocalFilesystem(env, optane_ssd(env), name="fast")
    table = MountTable()
    table.mount("/data", slow)
    table.mount("/data/hot", fast)
    assert table.resolve("/data/file") is slow
    assert table.resolve("/data/hot/file") is fast


def test_mount_table_rejects_duplicate_and_unmounted_paths():
    env = Environment()
    fs = LocalFilesystem(env, hdd(env))
    table = MountTable()
    table.mount("/data", fs)
    with pytest.raises(ValueError):
        table.mount("/data", fs)
    with pytest.raises(FileNotFoundError):
        table.resolve("/other/file")
    with pytest.raises(ValueError):
        table.mount("relative/path", fs)


def test_placement_override_beats_mount():
    env = Environment()
    slow = LocalFilesystem(env, hdd(env), name="slow")
    fast = LocalFilesystem(env, optane_ssd(env), name="fast")
    table = MountTable()
    table.mount("/data", slow)
    table.set_placement("/data/small.bin", fast)
    assert table.resolve("/data/small.bin") is fast
    assert table.resolve("/data/big.bin") is slow
    table.clear_placement("/data/small.bin")
    assert table.resolve("/data/small.bin") is slow


def test_staging_copies_bytes_and_repoints_placement():
    env = Environment()
    hdd_fs = LocalFilesystem(env, hdd(env), name="hdd")
    optane_fs = LocalFilesystem(env, optane_ssd(env), name="optane")
    table = MountTable()
    table.mount("/data", hdd_fs)
    manager = StagingManager(table)

    files = [("/data/a", "a", 1 << 20), ("/data/b", "b", 2 << 20)]
    result = env.run(until=env.process(
        manager.stage(env, files, optane_fs)))
    assert result.file_count == 2
    assert result.staged_bytes == 3 << 20
    assert table.resolve("/data/a") is optane_fs
    assert hdd_fs.device.metrics.bytes_read >= 3 << 20
    assert optane_fs.device.metrics.bytes_written == 3 << 20
    assert result.elapsed > 0


def test_mount_table_devices_enumerates_all():
    env = Environment()
    hdd_fs = LocalFilesystem(env, hdd(env), name="hdd")
    optane_fs = LocalFilesystem(env, optane_ssd(env), name="optane")
    table = MountTable()
    table.mount("/data", hdd_fs)
    table.mount("/optane", optane_fs)
    names = {d.name for d in table.devices()}
    assert names == {"sda", "nvme0n1"}


# -- PageCache ----------------------------------------------------------------

def test_page_cache_hit_after_insert():
    cache = PageCache(capacity_bytes=1 << 20)
    cache.insert("f", 0, 1000)
    cached, uncached = cache.split_request("f", 0, 1000)
    assert cached == 1000 and uncached == 0
    assert cache.stats()["hits"] == 1


def test_page_cache_miss_on_cold_file():
    cache = PageCache(capacity_bytes=1 << 20)
    cached, uncached = cache.split_request("f", 0, 500)
    assert cached == 0 and uncached == 500


def test_page_cache_partial_hit():
    cache = PageCache(capacity_bytes=1 << 20)
    cache.insert("f", 0, 600)
    cached, uncached = cache.split_request("f", 0, 1000)
    assert cached == 600 and uncached == 400


def test_page_cache_drop_clears_everything():
    cache = PageCache(capacity_bytes=1 << 20)
    cache.insert("f", 0, 1000)
    cache.drop()
    cached, _ = cache.split_request("f", 0, 1000)
    assert cached == 0
    assert cache.used_bytes == 0


def test_page_cache_lru_eviction_respects_capacity():
    cache = PageCache(capacity_bytes=1000)
    cache.insert("a", 0, 600)
    cache.insert("b", 0, 600)
    assert cache.used_bytes <= 1000
    assert cache.stats()["evictions"] >= 1
    # The least recently used file (a) was evicted.
    assert cache.resident_bytes("a") == 0
    assert cache.resident_bytes("b") == 600


def test_page_cache_invalidate_single_file():
    cache = PageCache(capacity_bytes=10_000)
    cache.insert("a", 0, 100)
    cache.insert("b", 0, 100)
    cache.invalidate("a")
    assert cache.resident_bytes("a") == 0
    assert cache.resident_bytes("b") == 100
    assert cache.used_bytes == 100
