"""Tests for the block-device models."""

import pytest

from repro.sim import Environment
from repro.storage import RotationalDevice, StreamingDevice


def run_process(env, gen):
    proc = env.process(gen)
    return env.run(until=proc)


def test_streaming_device_single_read_time():
    env = Environment()
    dev = StreamingDevice(env, "ssd", read_bandwidth=100e6, latency=1e-3)

    def proc():
        op = yield from dev.read(100_000_000)
        return op

    op = run_process(env, proc())
    # 1 ms latency + 1 s transfer
    assert op.duration == pytest.approx(1.001, rel=1e-6)
    assert dev.metrics.bytes_read == 100_000_000
    assert dev.metrics.read_ops == 1


def test_streaming_device_concurrent_reads_share_bandwidth():
    env = Environment()
    dev = StreamingDevice(env, "ssd", read_bandwidth=100e6, latency=0.0)
    ends = []

    def proc():
        op = yield from dev.read(50_000_000)
        ends.append(op.end)

    env.process(proc())
    env.process(proc())
    env.run()
    # 100 MB total at 100 MB/s aggregate -> both finish at 1 s.
    assert all(end == pytest.approx(1.0, rel=1e-6) for end in ends)


def test_streaming_device_per_stream_cap():
    env = Environment()
    dev = StreamingDevice(env, "ssd", read_bandwidth=1e9, latency=0.0,
                          per_stream_bandwidth=100e6)

    def proc():
        op = yield from dev.read(100_000_000)
        return op

    op = run_process(env, proc())
    assert op.duration == pytest.approx(1.0, rel=1e-6)


def test_streaming_device_write_uses_write_bandwidth():
    env = Environment()
    dev = StreamingDevice(env, "ssd", read_bandwidth=200e6,
                          write_bandwidth=100e6, latency=0.0)

    def proc():
        op = yield from dev.write(100_000_000)
        return op

    op = run_process(env, proc())
    assert op.duration == pytest.approx(1.0, rel=1e-6)
    assert dev.metrics.bytes_written == 100_000_000


def test_streaming_device_queue_depth_limits_latency_phase():
    env = Environment()
    dev = StreamingDevice(env, "nvme", read_bandwidth=1e12, latency=1e-3,
                          queue_depth=1)
    ends = []

    def proc():
        op = yield from dev.read(1)
        ends.append(op.end)

    for _ in range(3):
        env.process(proc())
    env.run()
    # Latency phases serialize with queue depth 1 -> 1, 2, 3 ms.
    assert sorted(ends) == [pytest.approx(0.001), pytest.approx(0.002),
                            pytest.approx(0.003)]


def test_rotational_sequential_reads_skip_seek():
    env = Environment()
    dev = RotationalDevice(env, "hdd", bandwidth=100e6, seek_time=10e-3,
                           settle_time=0.0)

    def proc():
        first = yield from dev.read(1_000_000, stream_id="file-a", offset=0)
        second = yield from dev.read(1_000_000, stream_id="file-a",
                                     offset=1_000_000)
        return first, second

    first, second = run_process(env, proc())
    assert first.seeked is True
    assert second.seeked is False
    assert first.duration == pytest.approx(0.020, rel=1e-6)   # seek + 10ms
    assert second.duration == pytest.approx(0.010, rel=1e-6)  # stream only


def test_rotational_interleaved_streams_seek_every_time():
    env = Environment()
    dev = RotationalDevice(env, "hdd", bandwidth=100e6, seek_time=10e-3,
                           settle_time=0.0)
    ops = []

    def reader(name, offset_base):
        for i in range(2):
            op = yield from dev.read(1_000_000, stream_id=name,
                                     offset=offset_base + i * 1_000_000)
            ops.append(op)

    def driver():
        # Interleave by alternating between two sequential streams.
        a = env.process(reader("file-a", 0))
        b = env.process(reader("file-b", 0))
        yield env.all_of([a, b])

    run_process(env, driver())
    # With two interleaved streams on one head, most requests pay the seek.
    seeks = sum(1 for op in ops if op.seeked)
    assert seeks >= 3


def test_rotational_aggregate_bandwidth_drops_with_interleaving():
    """The Fig. 11a effect: concurrent streams lower HDD throughput."""
    def run(n_streams):
        env = Environment()
        dev = RotationalDevice(env, "hdd", bandwidth=160e6, seek_time=5e-3,
                               settle_time=0.25e-3)
        per_stream_bytes = 8 * 1_000_000
        chunk = 1_000_000

        def reader(name):
            offset = 0
            for _ in range(per_stream_bytes // chunk):
                yield from dev.read(chunk, stream_id=name, offset=offset)
                offset += chunk

        for i in range(n_streams):
            env.process(reader(f"file-{i}"))
        env.run()
        total = n_streams * per_stream_bytes
        return total / env.now

    single = run(1)
    many = run(8)
    assert many < single
    # The drop should be noticeable but not catastrophic (paper: 94 -> 77).
    assert many / single > 0.3


def test_rotational_requests_serialize_on_the_head():
    env = Environment()
    dev = RotationalDevice(env, "hdd", bandwidth=100e6, seek_time=5e-3,
                           settle_time=0.0)

    def proc(name):
        yield from dev.read(500_000, stream_id=name, offset=0)

    env.process(proc("a"))
    env.process(proc("b"))
    env.run()
    # Two requests of (5 + 5) ms each must serialize: 20 ms total.
    assert env.now == pytest.approx(0.020, rel=1e-6)


def test_device_rejects_bad_parameters():
    env = Environment()
    with pytest.raises(ValueError):
        StreamingDevice(env, "x", read_bandwidth=0)
    with pytest.raises(ValueError):
        RotationalDevice(env, "x", bandwidth=-1)


def test_metrics_record_reads_and_writes_separately():
    env = Environment()
    dev = StreamingDevice(env, "ssd", read_bandwidth=100e6, latency=0.0)

    def proc():
        yield from dev.read(1000)
        yield from dev.write(2000)

    run_process(env, proc())
    assert dev.metrics.bytes_read == 1000
    assert dev.metrics.bytes_written == 2000
    assert dev.metrics.read_ops == 1
    assert dev.metrics.write_ops == 1
