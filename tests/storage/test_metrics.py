"""Tests for device metrics and throughput timelines."""

import numpy as np
import pytest

from repro.storage.metrics import DeviceMetrics, merge_timelines


def test_bytes_between_full_overlap():
    m = DeviceMetrics("d")
    m.record_transfer(1.0, 3.0, 200)
    assert m.bytes_between(0.0, 4.0) == pytest.approx(200)


def test_bytes_between_partial_overlap_is_proportional():
    m = DeviceMetrics("d")
    m.record_transfer(0.0, 10.0, 1000)
    assert m.bytes_between(0.0, 5.0) == pytest.approx(500)
    assert m.bytes_between(2.5, 7.5) == pytest.approx(500)
    assert m.bytes_between(9.0, 20.0) == pytest.approx(100)


def test_bytes_between_read_write_filter():
    m = DeviceMetrics("d")
    m.record_transfer(0.0, 1.0, 100, is_write=False)
    m.record_transfer(0.0, 1.0, 50, is_write=True)
    assert m.bytes_between(0, 1, writes=False) == pytest.approx(100)
    assert m.bytes_between(0, 1, writes=True) == pytest.approx(50)
    assert m.bytes_between(0, 1) == pytest.approx(150)


def test_instantaneous_transfer_lands_in_its_bin():
    m = DeviceMetrics("d")
    m.record_transfer(2.0, 2.0, 42)
    assert m.bytes_between(2.0, 3.0) == pytest.approx(42)
    assert m.bytes_between(0.0, 2.0) == pytest.approx(0)


def test_throughput_timeline_bins():
    m = DeviceMetrics("d")
    m.record_transfer(0.0, 2.0, 200)  # 100 B/s for two seconds
    times, rates = m.throughput_timeline(bin_seconds=1.0)
    assert len(times) == 2
    assert rates[0] == pytest.approx(100)
    assert rates[1] == pytest.approx(100)


def test_throughput_timeline_total_is_conserved():
    m = DeviceMetrics("d")
    m.record_transfer(0.3, 4.7, 1234)
    m.record_transfer(1.1, 1.9, 777)
    times, rates = m.throughput_timeline(bin_seconds=0.5)
    assert rates.sum() * 0.5 == pytest.approx(1234 + 777, rel=1e-9)


def test_invalid_interval_rejected():
    m = DeviceMetrics("d")
    with pytest.raises(ValueError):
        m.record_transfer(5.0, 4.0, 10)


def test_reset_clears_everything():
    m = DeviceMetrics("d")
    m.record_transfer(0.0, 1.0, 10)
    m.record_metadata_op()
    m.reset()
    assert m.total_bytes == 0
    assert m.metadata_ops == 0
    assert m.intervals == []


def test_merge_timelines_sums_rates():
    a = (np.array([0.0, 1.0]), np.array([10.0, 20.0]))
    b = (np.array([0.0, 1.0, 2.0]), np.array([1.0, 2.0, 3.0]))
    times, total = merge_timelines([a, b])
    assert len(times) == 3
    assert total[0] == pytest.approx(11.0)
    assert total[1] == pytest.approx(22.0)
    assert total[2] == pytest.approx(3.0)


def test_merge_timelines_empty():
    times, total = merge_timelines([])
    assert len(times) == 0 and len(total) == 0
