"""End-to-end campaign runs over the real (scaled-down) paper workloads.

These are the acceptance tests of the campaign layer: a 12-job grid of
genuine ImageNet/malware training simulations executes through both
executors with identical aggregates, and an unchanged grid re-run is
served from cache.
"""

import pytest

from repro.campaign import (
    MultiprocessingExecutor,
    ResultCache,
    SerialExecutor,
    SweepSpec,
    run_campaign,
)

#: Tiny but real: every job builds a platform, lays out the dataset, runs
#: the pipeline and profiles it — just at doll-house scale.
IMAGENET_SPEC = SweepSpec(
    name="it-imagenet",
    case="imagenet",
    base={"scale": 0.004, "steps": 2, "batch_size": 32, "profile": "epoch"},
    grid={"threads": [1, 2, 4]},
    seed=11,
)

MALWARE_SPEC = SweepSpec(
    name="it-malware",
    case="malware",
    base={"scale": 0.02, "steps": 2, "batch_size": 16, "profile": "epoch"},
    grid={"threads": [1, 2, 4], "staging_threshold": [0, 2097152, 8388608]},
    seed=11,
)


def test_twelve_job_mixed_grid_serial_vs_parallel():
    """>=12 real-simulation jobs: serial and multiprocessing agree exactly."""
    specs = [IMAGENET_SPEC, MALWARE_SPEC]
    assert sum(spec.job_count for spec in specs) == 12

    serial = [run_campaign(spec, executor=SerialExecutor()) for spec in specs]
    parallel = [run_campaign(spec,
                             executor=MultiprocessingExecutor(processes=4))
                for spec in specs]
    for serial_result, parallel_result in zip(serial, parallel):
        assert serial_result.ok, serial_result.failures
        assert parallel_result.ok, parallel_result.failures
        assert serial_result.aggregate_fingerprint() == \
            parallel_result.aggregate_fingerprint()

    # The sweep reproduces the paper's qualitative physics even at tiny
    # scale: more input threads never lower Lustre ingest bandwidth.
    xs, ys = serial[0].series("threads", "posix_bandwidth")
    assert xs == [1, 2, 4]
    assert ys[0] < ys[-1]


def test_unchanged_grid_rerun_is_served_from_cache(tmp_path):
    cache = ResultCache(tmp_path)
    first = run_campaign(IMAGENET_SPEC, executor=SerialExecutor(), cache=cache)
    assert (first.cache_hits, first.cache_misses) == (0, 3)

    second = run_campaign(IMAGENET_SPEC, executor=SerialExecutor(), cache=cache)
    assert (second.cache_hits, second.cache_misses) == (3, 0)
    assert all(result.cached for result in second)
    assert second.aggregate_fingerprint() == first.aggregate_fingerprint()
    # Cache-served reruns skip the simulation entirely: orders of magnitude
    # faster than the first pass, without pinning exact wall times.
    assert second.wall_time < first.wall_time


def test_campaign_metrics_expose_profile_counters():
    result = run_campaign(IMAGENET_SPEC, executor=SerialExecutor())
    for job in result:
        metrics = job.metrics
        # The Fig. 7/8 signatures survive the flattening into metrics.
        assert metrics["posix_reads"] == 2 * metrics["posix_opens"]
        assert metrics["zero_byte_reads"] == metrics["posix_opens"]
        assert metrics["bytes_read"] > 0
        assert 0.0 <= metrics["random_fraction"] <= 1.0


def test_staging_threshold_axis_changes_staged_bytes():
    result = run_campaign(MALWARE_SPEC, executor=MultiprocessingExecutor())
    assert result.ok, result.failures
    naive = result.one({"threads": 1, "staging_threshold": 0})
    staged = result.one({"threads": 1, "staging_threshold": 8388608})
    assert "staged_bytes" not in naive.metrics
    assert staged.metrics["staged_bytes"] > 0
