"""Unit and crash-consistency tests for the durable work queue.

The queue's contract is that *no* state transition can lose a job: worker
crashes surface as expired leases and requeue, truncated/garbage JSON
bookkeeping reads as "requeueable", and only exhausting ``max_attempts``
(or a corrupt immutable job record, which leaves nothing to execute)
parks a job in the dead-letter state.  Time is injected so lease expiry
is tested without sleeping.
"""

import json
import os

import pytest

from repro.campaign import SweepSpec
from repro.campaign.dist import CostModel, WorkQueue, priority_for_cost
from repro.campaign.jobs import JobResult, execute_job


def _spec(**overrides):
    kwargs = dict(name="queue-spec", case="synthetic", base={"rate": 150.0},
                  grid={"workers": [1, 2], "tasks": [4, 8]})
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


def _jobs(spec=None):
    return (spec or _spec()).expand()


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def queue(tmp_path, clock):
    return WorkQueue(tmp_path / "q", lease_seconds=10.0, max_attempts=3,
                     clock=clock)


# -- lifecycle --------------------------------------------------------------

def test_enqueue_claim_complete_lifecycle(queue):
    jobs = _jobs()
    for job in jobs:
        queue.enqueue(job)
    assert queue.counts() == {"pending": 4, "claimed": 0, "done": 0, "dead": 0}
    assert not queue.drained()

    seen = []
    while True:
        item = queue.claim("w0")
        if item is None:
            break
        result = execute_job(item.job)
        queue.complete(item, result)
        seen.append(item.key)
    assert len(seen) == 4
    assert queue.drained()
    assert queue.counts() == {"pending": 0, "claimed": 0, "done": 4, "dead": 0}
    results = queue.results()
    assert set(results) == {job.job_id for job in jobs}
    assert all(isinstance(r, JobResult) and r.ok for r in results.values())


def test_enqueue_is_idempotent(queue):
    job = _jobs()[0]
    first = queue.enqueue(job, cost=2.0)
    again = queue.enqueue(job, cost=99.0)  # different cost: same ticket
    assert first == again
    assert queue.counts()["pending"] == 1
    item = queue.claim("w0")
    queue.complete(item, execute_job(item.job))
    assert queue.enqueue(job) == first  # done: no new ticket
    assert queue.counts()["pending"] == 0


def test_longest_job_first_claim_order(queue):
    jobs = _jobs()
    costs = [0.5, 8.0, 2.0, 4.0]
    for job, cost in zip(jobs, costs):
        queue.enqueue(job, cost=cost)
    order = []
    while True:
        item = queue.claim("w0")
        if item is None:
            break
        order.append(item.cost)
        queue.complete(item, execute_job(item.job))
    assert order == sorted(costs, reverse=True)


def test_priority_encoding_sorts_longest_first():
    assert priority_for_cost(10.0) < priority_for_cost(1.0)
    assert priority_for_cost(1.0) < priority_for_cost(0.0)
    assert priority_for_cost(-1.0) == priority_for_cost(0.0)


def test_claim_is_mutually_exclusive(queue):
    jobs = _jobs()
    for job in jobs:
        queue.enqueue(job)
    items = [queue.claim(f"w{i}") for i in range(6)]
    claimed = [item for item in items if item is not None]
    assert len(claimed) == 4
    assert len({item.key for item in claimed}) == 4  # never the same job twice


def test_workload_error_results_settle_as_completed(queue):
    spec = _spec(grid={"workers": [0]})  # workers=0 raises inside the case
    job = spec.expand()[0]
    queue.enqueue(job)
    item = queue.claim("w0")
    result = execute_job(item.job)
    assert not result.ok
    queue.complete(item, result)
    assert queue.drained()
    assert queue.counts()["dead"] == 0  # deterministic failure, no retry
    assert not queue.results()[job.job_id].ok


# -- leases, retries, dead-letter ------------------------------------------

def test_expired_lease_is_requeued_with_attempt_count(queue, clock):
    job = _jobs()[0]
    queue.enqueue(job)
    item = queue.claim("w0")
    assert queue.requeue_expired() == []  # live lease

    clock.advance(11.0)  # beyond lease_seconds
    assert queue.requeue_expired() == [job.job_id]
    assert queue.counts() == {"pending": 1, "claimed": 0, "done": 0, "dead": 0}
    retried = queue.claim("w1")
    assert retried.key == item.key
    assert retried.attempts == 1


def test_heartbeat_keeps_the_lease_alive(queue, clock):
    job = _jobs()[0]
    queue.enqueue(job)
    item = queue.claim("w0")
    clock.advance(8.0)
    queue.heartbeat(item)
    clock.advance(8.0)  # 16s since claim, 8s since heartbeat
    assert queue.requeue_expired() == []
    assert queue.counts()["claimed"] == 1


def test_max_attempts_dead_letters(queue, clock):
    job = _jobs()[0]
    queue.enqueue(job)
    for _attempt in range(queue.max_attempts - 1):
        assert queue.claim("w0") is not None
        clock.advance(11.0)
        queue.requeue_expired()
    assert queue.claim("w0") is not None
    clock.advance(11.0)
    assert queue.requeue_expired() == []  # third expiry buries it
    assert queue.counts()["dead"] == 1
    assert queue.claim("w0") is None
    record = queue.dead()[job.job_id]
    assert record["attempts"] == queue.max_attempts
    assert "lease expired" in record["error"]
    assert record["job"]["params"] == dict(job.params)


def test_fail_requeues_then_dead_letters(queue):
    job = _jobs()[0]
    queue.enqueue(job)
    assert queue.fail(queue.claim("w0"), "no GPU") == "requeued"
    assert queue.fail(queue.claim("w0"), "no GPU") == "requeued"
    assert queue.fail(queue.claim("w0"), "no GPU") == "dead"
    assert queue.dead()[job.job_id]["error"] == "no GPU"
    assert queue.drained()


def test_retry_dead_revives_buried_jobs(queue):
    """Dead-lettering must not strand a persistent queue forever: after
    the infrastructure failure is fixed, retry_dead() restores the job
    (with a fresh attempt budget) while enqueue alone refuses to."""
    job = _jobs()[0]
    queue.enqueue(job, cost=3.0)
    for _ in range(queue.max_attempts):
        queue.fail(queue.claim("w0"), "transient breakage")
    assert queue.counts()["dead"] == 1
    queue.enqueue(job)  # replaying the grid does NOT revive buried jobs
    assert queue.counts()["pending"] == 0

    assert queue.retry_dead() == [job.job_id]
    assert queue.counts() == {"pending": 1, "claimed": 0, "done": 0, "dead": 0}
    item = queue.claim("w0")
    assert item.attempts == 0 and item.cost == 3.0  # budget + priority kept
    queue.complete(item, execute_job(item.job))
    assert queue.results()[job.job_id].ok
    assert queue.retry_dead() == []  # idempotent on an empty dead set


def test_completion_after_expiry_requeue_is_harmless(queue, clock):
    """The double-execution race: worker A's lease expires, B re-runs the
    job, then A (alive all along, just slow) completes too.  Results are
    content-derived, so both completions store identical records."""
    job = _jobs()[0]
    queue.enqueue(job)
    item_a = queue.claim("wA")
    clock.advance(11.0)
    queue.requeue_expired()
    item_b = queue.claim("wB")
    result = execute_job(job)
    queue.complete(item_b, result)
    queue.complete(item_a, result)  # late completion: no error, no dup state
    assert queue.drained()
    assert queue.counts()["dead"] == 0
    assert queue.results()[job.job_id].metrics == result.metrics


# -- crash consistency ------------------------------------------------------

def test_garbage_ticket_is_claimable_not_fatal(queue, tmp_path):
    """A truncated/garbage pending ticket must not lose the job: the spec
    in jobs/ is intact, so the claim proceeds with attempts reset to 0."""
    job = _jobs()[0]
    name = queue.enqueue(job)
    (tmp_path / "q" / "pending" / f"{name}.json").write_text(
        '{"attempts": 2', encoding="utf-8")  # truncated JSON
    item = queue.claim("w0")
    assert item is not None
    assert item.key == job.job_id
    assert item.attempts == 0
    queue.complete(item, execute_job(item.job))
    assert queue.drained()


def test_garbage_lease_reads_as_expired(queue, tmp_path, clock):
    job = _jobs()[0]
    name = queue.enqueue(job)
    assert queue.claim("w0") is not None
    lease = tmp_path / "q" / "leases" / f"{name}.json"
    lease.write_text("not json at all", encoding="utf-8")
    # No clock advance needed: an unreadable lease *file* counts as
    # expired immediately (lease writes are atomic, so garbage means
    # external corruption, not a mid-write heartbeat).
    assert queue.requeue_expired() == [job.job_id]
    assert queue.claim("w1").attempts == 1


def test_missing_lease_gets_claim_window_grace(queue, tmp_path, clock):
    """claim() commits with the ticket rename and writes the lease a few
    syscalls later: a scavenger racing through that window must not steal
    the claim.  Only a claim *older* than a full lease with no lease file
    (the claimant crashed mid-claim) is requeued."""
    job = _jobs()[0]
    name = queue.enqueue(job)
    assert queue.claim("w0") is not None
    ticket = tmp_path / "q" / "claimed" / f"{name}.json"
    os.unlink(tmp_path / "q" / "leases" / f"{name}.json")

    os.utime(ticket, (clock.now - 1.0, clock.now - 1.0))  # young claim
    assert queue.requeue_expired() == []
    assert queue.counts()["claimed"] == 1

    os.utime(ticket, (clock.now - 11.0, clock.now - 11.0))  # beyond grace
    assert queue.requeue_expired() == [job.job_id]
    assert queue.claim("w1").attempts == 1


def test_claim_stamps_ticket_with_claim_time(queue, tmp_path, clock):
    """os.rename preserves mtime, so claim() must re-stamp the ticket:
    a job that sat pending longer than a lease, claimed a moment ago,
    is inside the grace window — not instantly stealable."""
    job = _jobs()[0]
    name = queue.enqueue(job)
    clock.advance(50.0)  # pending far longer than lease_seconds
    assert queue.claim("w0") is not None
    os.unlink(tmp_path / "q" / "leases" / f"{name}.json")  # pre-lease window
    assert queue.requeue_expired() == []  # grace runs from the claim, not
    assert queue.counts()["claimed"] == 1  # the enqueue write


def test_corrupt_job_record_is_dead_lettered_not_fatal(queue, tmp_path):
    """Only the immutable spec's corruption buries a job — nothing is left
    to execute — and the rest of the queue keeps flowing."""
    jobs = _jobs()
    for job in jobs:
        queue.enqueue(job)
    (tmp_path / "q" / "jobs" / f"{jobs[0].job_id}.json").write_text(
        "{ truncated", encoding="utf-8")
    claimed = []
    while True:
        item = queue.claim("w0")
        if item is None:
            break
        queue.complete(item, execute_job(item.job))
        claimed.append(item.key)
    assert len(claimed) == 3  # the other three jobs were unaffected
    assert queue.counts()["dead"] == 1
    assert "corrupt job record" in queue.dead()[jobs[0].job_id]["error"]


def test_foreign_files_in_state_dirs_are_ignored(queue, tmp_path):
    (tmp_path / "q" / "pending" / "README.json").write_text(
        "{}", encoding="utf-8")  # no priority prefix: not a ticket
    (tmp_path / "q" / "pending" / "notes.txt").write_text(
        "hi", encoding="utf-8")
    assert queue.claim("w0") is None
    job = _jobs()[0]
    queue.enqueue(job)
    assert queue.claim("w0") is not None


def test_duplicate_pending_and_claimed_state_heals(queue, tmp_path):
    """A ticket present in both pending/ and claimed/ (external corruption
    or legacy crash residue) folds back into a single pending ticket via
    an atomic rename — never an unlink that could strand a racing claim.
    The conservative claimed-side attempt count wins."""
    job = _jobs()[0]
    name = queue.enqueue(job)
    queue.claim("w0")
    (tmp_path / "q" / "pending" / f"{name}.json").write_text(
        json.dumps({"attempts": 1}), encoding="utf-8")
    queue.requeue_expired()
    assert queue.counts()["pending"] == 1
    assert queue.counts()["claimed"] == 0
    assert queue.claim("w0").attempts == 0


def test_queue_config_is_shared_across_opens(tmp_path):
    WorkQueue(tmp_path / "q", lease_seconds=5.0, max_attempts=7)
    reopened = WorkQueue(tmp_path / "q", lease_seconds=99.0, max_attempts=1)
    assert reopened.lease_seconds == 5.0
    assert reopened.max_attempts == 7


def test_invalid_config_is_rejected_without_poisoning_the_directory(tmp_path):
    with pytest.raises(ValueError):
        WorkQueue(tmp_path / "q", lease_seconds=0.0)
    # The bad call must not have persisted its config: a valid open works.
    queue = WorkQueue(tmp_path / "q", lease_seconds=5.0)
    assert queue.lease_seconds == 5.0


def test_corrupt_result_file_is_skipped(queue, tmp_path):
    job = _jobs()[0]
    queue.enqueue(job)
    item = queue.claim("w0")
    queue.complete(item, execute_job(item.job))
    (tmp_path / "q" / "results" / f"{job.job_id}.json").write_text(
        "{ nope", encoding="utf-8")
    assert queue.results() == {}  # unreadable record, not a crash


# -- cost model -------------------------------------------------------------

def test_cost_model_orders_longest_first(tmp_path):
    jobs = _jobs()
    model = CostModel(tmp_path / "costmodel.json")
    walls = [0.5, 8.0, 2.0, 4.0]
    for job, wall in zip(jobs, walls):
        model.observe(JobResult(job_id=job.job_id, case=job.case,
                                params=job.params, seed=job.seed,
                                metrics={}, wall_time=wall))
    ordered = model.order(jobs)
    assert [model.estimate(job) for job in ordered] == sorted(walls,
                                                              reverse=True)
    model.save()

    # Reload: exact estimates survive, unseen jobs fall back to case mean.
    reloaded = CostModel(tmp_path / "costmodel.json")
    assert reloaded.estimate(jobs[1]) == 8.0
    unseen = _spec(grid={"workers": [5], "tasks": [99]}).expand()[0]
    assert reloaded.estimate(unseen) == pytest.approx(sum(walls) / len(walls))


def test_cost_model_ignores_cached_results_and_survives_corruption(tmp_path):
    path = tmp_path / "costmodel.json"
    model = CostModel(path)
    job = _jobs()[0]
    model.observe(JobResult(job_id=job.job_id, case=job.case,
                            params=job.params, seed=job.seed,
                            wall_time=3.0, cached=True))
    assert model.estimate(job) == 1.0  # cached runs teach nothing
    path.write_text("garbage{", encoding="utf-8")
    assert CostModel(path).estimate(job) == 1.0  # corrupt model == empty
    # Valid JSON with corrupt field types must degrade, not raise.
    path.write_text(json.dumps({
        "exact": {"a-job": "fast", "b-job": True},
        "cases": {"synthetic": {"count": None, "mean": "oops"},
                  "platform": "not-a-dict"},
    }), encoding="utf-8")
    assert CostModel(path).estimate(job) == 1.0
    # Non-finite values round-trip through json; they must be dropped, and
    # the priority encoding must clamp rather than overflow either way.
    path.write_text(json.dumps({
        "exact": {job.job_id: float("inf")},
        "cases": {"synthetic": {"count": 1.0, "mean": float("nan")}},
    }), encoding="utf-8")
    assert CostModel(path).estimate(job) == 1.0
    for weird in (float("inf"), float("-inf"), float("nan")):
        assert len(priority_for_cost(weird)) == 10
