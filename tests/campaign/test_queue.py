"""Unit and crash-consistency tests for the durable work queue.

The queue's contract is that *no* state transition can lose a job: worker
crashes surface as expired leases and requeue, truncated/garbage JSON
bookkeeping reads as "requeueable", and only exhausting ``max_attempts``
(or a corrupt immutable job record, which leaves nothing to execute)
parks a job in the dead-letter state.  Time is injected so lease expiry
is tested without sleeping.

Every test here runs three times — over the filesystem, in-memory and
HTTP-broker transports — because the queue's whole claim to a *pluggable*
storage seam is that these properties are transport-independent.
Corruption is injected through the transport (``transport.put`` of
garbage bytes), which reaches all three backends identically.
"""

import json

import pytest

from repro.campaign import SweepSpec
from repro.campaign.dist import (
    CostModel,
    FsTransport,
    HttpTransport,
    MemoryTransport,
    ShardedTransport,
    WorkQueue,
    cost_for_priority,
    priority_for_cost,
)
from repro.campaign.dist.server import Broker
from repro.campaign.jobs import JobResult, execute_job

TRANSPORTS = ("fs", "memory", "http", "sharded-memory", "sharded-http")


def _spec(**overrides):
    kwargs = dict(name="queue-spec", case="synthetic", base={"rate": 150.0},
                  grid={"workers": [1, 2], "tasks": [4, 8]})
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


def _jobs(spec=None):
    return (spec or _spec()).expand()


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture(params=TRANSPORTS)
def make_transport(request, tmp_path):
    """Factory yielding transports that all address the *same* store, so
    tests can model a second process opening an existing queue.  The
    sharded params return a *fresh* 2-shard router per call over the same
    backing shards — exactly how a second worker process joins a sharded
    fleet — so every queue property is also enforced cross-shard."""
    if request.param == "fs":
        yield lambda: FsTransport(tmp_path / "q")
    elif request.param == "memory":
        shared = MemoryTransport()
        yield lambda: shared
    elif request.param == "sharded-memory":
        shards = [MemoryTransport(), MemoryTransport()]
        yield lambda: ShardedTransport(shards)
    elif request.param == "sharded-http":
        brokers = [Broker().start(), Broker().start()]
        try:
            yield lambda: ShardedTransport(
                [HttpTransport(b.url, retries=2, retry_delay=0.05)
                 for b in brokers])
        finally:
            for b in brokers:
                b.stop()
    else:
        broker = Broker().start()
        try:
            yield lambda: HttpTransport(broker.url, retries=2,
                                        retry_delay=0.05)
        finally:
            broker.stop()


@pytest.fixture
def queue(make_transport, clock):
    return WorkQueue(transport=make_transport(), lease_seconds=10.0,
                     max_attempts=3, clock=clock)


# -- lifecycle --------------------------------------------------------------

def test_enqueue_claim_complete_lifecycle(queue):
    jobs = _jobs()
    for job in jobs:
        queue.enqueue(job)
    assert queue.counts() == {"pending": 4, "claimed": 0, "done": 0, "dead": 0}
    assert not queue.drained()

    seen = []
    while True:
        item = queue.claim("w0")
        if item is None:
            break
        result = execute_job(item.job)
        queue.complete(item, result)
        seen.append(item.key)
    assert len(seen) == 4
    assert queue.drained()
    assert queue.counts() == {"pending": 0, "claimed": 0, "done": 4, "dead": 0}
    results = queue.results()
    assert set(results) == {job.job_id for job in jobs}
    assert all(isinstance(r, JobResult) and r.ok for r in results.values())


def test_enqueue_is_idempotent(queue):
    job = _jobs()[0]
    first = queue.enqueue(job, cost=2.0)
    again = queue.enqueue(job, cost=99.0)  # different cost: same ticket
    assert first == again
    assert queue.counts()["pending"] == 1
    item = queue.claim("w0")
    queue.complete(item, execute_job(item.job))
    assert queue.enqueue(job) == first  # done: no new ticket
    assert queue.counts()["pending"] == 0


def test_longest_job_first_claim_order(queue):
    jobs = _jobs()
    costs = [0.5, 8.0, 2.0, 4.0]
    for job, cost in zip(jobs, costs):
        queue.enqueue(job, cost=cost)
    order = []
    while True:
        item = queue.claim("w0")
        if item is None:
            break
        order.append(item.cost)
        queue.complete(item, execute_job(item.job))
    assert order == sorted(costs, reverse=True)


def test_priority_encoding_sorts_longest_first():
    assert priority_for_cost(10.0) < priority_for_cost(1.0)
    assert priority_for_cost(1.0) < priority_for_cost(0.0)
    assert priority_for_cost(-1.0) == priority_for_cost(0.0)


def test_priority_encoding_round_trips_for_backlog():
    """The autoscaler reads cost estimates back out of ticket names."""
    for cost in (0.0, 0.25, 1.0, 8.0, 3600.0):
        name = f"{priority_for_cost(cost)}-somejob"
        assert cost_for_priority(name) == pytest.approx(cost, abs=1e-3)
    assert cost_for_priority("not-a-ticket") == 0.0


def test_claim_is_mutually_exclusive(queue):
    jobs = _jobs()
    for job in jobs:
        queue.enqueue(job)
    items = [queue.claim(f"w{i}") for i in range(6)]
    claimed = [item for item in items if item is not None]
    assert len(claimed) == 4
    assert len({item.key for item in claimed}) == 4  # never the same job twice


def test_workload_error_results_settle_as_completed(queue):
    spec = _spec(grid={"workers": [0]})  # workers=0 raises inside the case
    job = spec.expand()[0]
    queue.enqueue(job)
    item = queue.claim("w0")
    result = execute_job(item.job)
    assert not result.ok
    queue.complete(item, result)
    assert queue.drained()
    assert queue.counts()["dead"] == 0  # deterministic failure, no retry
    assert not queue.results()[job.job_id].ok


def test_backlog_tracks_unclaimed_cost(queue):
    jobs = _jobs()
    costs = [0.5, 8.0, 2.0, 4.0]
    for job, cost in zip(jobs, costs):
        queue.enqueue(job, cost=cost)
    backlog = queue.backlog()
    assert backlog["pending"] == 4
    assert backlog["seconds"] == pytest.approx(sum(costs), abs=1e-2)
    queue.claim("w0")  # the 8.0s job leaves the claimable backlog
    backlog = queue.backlog()
    assert backlog["pending"] == 3
    assert backlog["seconds"] == pytest.approx(sum(costs) - 8.0, abs=1e-2)


# -- leases, retries, dead-letter ------------------------------------------

def test_expired_lease_is_requeued_with_attempt_count(queue, clock):
    job = _jobs()[0]
    queue.enqueue(job)
    item = queue.claim("w0")
    assert queue.requeue_expired() == []  # live lease

    clock.advance(11.0)  # beyond lease_seconds
    assert queue.requeue_expired() == [job.job_id]
    assert queue.counts() == {"pending": 1, "claimed": 0, "done": 0, "dead": 0}
    retried = queue.claim("w1")
    assert retried.key == item.key
    assert retried.attempts == 1


def test_heartbeat_keeps_the_lease_alive(queue, clock):
    job = _jobs()[0]
    queue.enqueue(job)
    item = queue.claim("w0")
    clock.advance(8.0)
    assert queue.heartbeat(item)
    clock.advance(8.0)  # 16s since claim, 8s since heartbeat
    assert queue.requeue_expired() == []
    assert queue.counts()["claimed"] == 1


def test_heartbeat_cannot_resurrect_a_reclaimed_lease(queue, clock):
    """Once the scavenger released an expired claim, the old holder's
    heartbeat must fail — a CAS on a deleted document — rather than
    blocking the requeued ticket forever (the bug an unconditional lease
    write would reintroduce)."""
    job = _jobs()[0]
    queue.enqueue(job)
    stale = queue.claim("slow-worker")
    clock.advance(11.0)
    assert queue.requeue_expired() == [job.job_id]
    assert not queue.heartbeat(stale)  # claim document is gone
    fresh = queue.claim("fresh-worker")
    assert fresh is not None and fresh.attempts == 1
    assert not queue.heartbeat(stale)  # now it is someone else's claim
    assert queue.heartbeat(fresh)


def test_max_attempts_dead_letters(queue, clock):
    job = _jobs()[0]
    queue.enqueue(job)
    for _attempt in range(queue.max_attempts - 1):
        assert queue.claim("w0") is not None
        clock.advance(11.0)
        queue.requeue_expired()
    assert queue.claim("w0") is not None
    clock.advance(11.0)
    assert queue.requeue_expired() == []  # third expiry buries it
    assert queue.counts()["dead"] == 1
    assert queue.claim("w0") is None
    record = queue.dead()[job.job_id]
    assert record["attempts"] == queue.max_attempts
    assert "lease expired" in record["error"]
    assert record["job"]["params"] == dict(job.params)


def test_fail_requeues_then_dead_letters(queue):
    job = _jobs()[0]
    queue.enqueue(job)
    assert queue.fail(queue.claim("w0"), "no GPU") == "requeued"
    assert queue.fail(queue.claim("w0"), "no GPU") == "requeued"
    assert queue.fail(queue.claim("w0"), "no GPU") == "dead"
    assert queue.dead()[job.job_id]["error"] == "no GPU"
    assert queue.drained()


def test_retry_dead_revives_buried_jobs(queue):
    """Dead-lettering must not strand a persistent queue forever: after
    the infrastructure failure is fixed, retry_dead() restores the job
    (with a fresh attempt budget) while enqueue alone refuses to."""
    job = _jobs()[0]
    queue.enqueue(job, cost=3.0)
    for _ in range(queue.max_attempts):
        queue.fail(queue.claim("w0"), "transient breakage")
    assert queue.counts()["dead"] == 1
    queue.enqueue(job)  # replaying the grid does NOT revive buried jobs
    assert queue.counts()["pending"] == 0

    assert queue.retry_dead() == [job.job_id]
    assert queue.counts() == {"pending": 1, "claimed": 0, "done": 0, "dead": 0}
    item = queue.claim("w0")
    assert item.attempts == 0 and item.cost == 3.0  # budget + priority kept
    queue.complete(item, execute_job(item.job))
    assert queue.results()[job.job_id].ok
    assert queue.retry_dead() == []  # idempotent on an empty dead set


def test_completion_after_expiry_requeue_is_harmless(queue, clock):
    """The double-execution race: worker A's lease expires, B re-runs the
    job, then A (alive all along, just slow) completes too.  Results are
    content-derived, so both completions store identical records."""
    job = _jobs()[0]
    queue.enqueue(job)
    item_a = queue.claim("wA")
    clock.advance(11.0)
    queue.requeue_expired()
    item_b = queue.claim("wB")
    result = execute_job(job)
    queue.complete(item_b, result)
    queue.complete(item_a, result)  # late completion: no error, no dup state
    assert queue.drained()
    assert queue.counts()["dead"] == 0
    assert queue.results()[job.job_id].metrics == result.metrics


def test_late_completion_cannot_release_the_new_claim(queue, clock):
    """Sharper than harmless: worker A's stale claim etag must not delete
    worker B's *live* claim while B is still executing a different
    attempt — A only retires bookkeeping its own etag still matches."""
    job = _jobs()[0]
    queue.enqueue(job)
    item_a = queue.claim("wA")
    clock.advance(11.0)
    queue.requeue_expired()
    item_b = queue.claim("wB")
    assert item_b is not None
    queue.complete(item_a, execute_job(job))  # A finishes late
    # B's lease still stands (the result exists, so B's job is moot, but
    # the claim release must come from B or the scavenger — not from A).
    assert queue.heartbeat(item_b)
    queue.complete(item_b, execute_job(job))
    assert queue.drained()


def test_claim_adopts_its_own_lost_response_write(queue, clock):
    """An HTTP retry can land the claim document and then see its second
    attempt rejected (the first response was lost): when the stored bytes
    are exactly the claimer's own payload, the claim is adopted instead
    of skipped — skipping would strand the worker's own lease and burn a
    retry attempt the job never used."""
    from repro.campaign.jsonio import json_dumps_bytes

    job = _jobs()[0]
    queue.enqueue(job)
    # Simulate the lost response: the claim-create lands in the store but
    # the caller sees a conflict (what an HTTP retry observes after its
    # first attempt's response vanished).
    real_cas = queue.transport.cas
    dropped = []

    def lossy_cas(key, data, if_match=None):
        tag = real_cas(key, data, if_match=if_match)
        if (key.startswith("claims/") and if_match is None
                and tag is not None and not dropped):
            dropped.append(key)
            return None  # the write landed; the response did not
        return tag

    # The own-write check lives in the *client-side* scan: over a broker
    # with server-side claim the CAS is local and exact, so pin the
    # fallback path (old brokers and fs/memory transports keep it).
    queue._claim_fallback = True
    queue.transport.cas = lossy_cas
    item = queue.claim("w0")
    assert dropped, "the simulated lost response never triggered"
    assert item is not None and item.key == job.job_id
    assert item.etag  # adopted, heartbeat/settle work as usual
    assert queue.heartbeat(item)
    queue.complete(item, execute_job(item.job))
    assert queue.drained()
    assert queue.counts()["dead"] == 0  # no retry attempt was burned
    # A genuinely foreign claim is still not stolen.
    name2 = queue.enqueue(_jobs()[1])
    queue.transport.put(f"claims/{name2}.json", json_dumps_bytes(
        queue._lease_payload("someone-else", 0, clock())))
    assert queue.claim("w0") is None


def test_torn_queue_config_is_healed(make_transport):
    """A garbage queue.json (torn create, external corruption) must be
    healed with an atomic rewrite — not silently papered over with each
    participant's own constructor defaults, which would let orchestrator
    and workers run divergent lease policies."""
    first = WorkQueue(transport=make_transport(), lease_seconds=5.0,
                      max_attempts=7)
    first.transport.put("queue.json", b"not json at all")
    healer = WorkQueue(transport=make_transport(), lease_seconds=9.0,
                       max_attempts=2)
    assert healer.lease_seconds == 9.0  # the healer's policy won
    # ... and was persisted: a later default open adopts it rather than
    # falling back to its own defaults.
    adopted = WorkQueue(transport=make_transport())
    assert adopted.lease_seconds == 9.0
    assert adopted.max_attempts == 2


def test_fresh_claim_is_never_stealable(queue, clock):
    """The claim document *is* the lease, created in the same atomic
    operation — so there is no claim-without-lease window for a racing
    scavenger to steal, even for a job that sat pending a long time."""
    job = _jobs()[0]
    queue.enqueue(job)
    clock.advance(50.0)  # pending far longer than lease_seconds
    assert queue.claim("w0") is not None
    assert queue.requeue_expired() == []  # lease runs from the claim
    assert queue.counts()["claimed"] == 1


# -- crash consistency ------------------------------------------------------

def test_garbage_ticket_is_claimable_not_fatal(queue):
    """A truncated/garbage pending ticket must not lose the job: the spec
    in jobs/ is intact, so the claim proceeds with attempts reset to 0."""
    job = _jobs()[0]
    name = queue.enqueue(job)
    queue.transport.put(f"pending/{name}.json", b'{"attempts": 2')  # torn
    item = queue.claim("w0")
    assert item is not None
    assert item.key == job.job_id
    assert item.attempts == 0
    queue.complete(item, execute_job(item.job))
    assert queue.drained()


def test_garbage_claim_reads_as_expired(queue, clock):
    job = _jobs()[0]
    name = queue.enqueue(job)
    assert queue.claim("w0") is not None
    queue.transport.put(f"claims/{name}.json", b"not json at all")
    # No clock advance needed: an unreadable claim document counts as
    # expired immediately (claim writes are atomic, so garbage means
    # external corruption, not a mid-write heartbeat).
    assert queue.requeue_expired() == [job.job_id]
    assert queue.claim("w1").attempts == 1


def test_crashed_settle_is_healed_from_the_result(queue, clock):
    """A worker that persisted the result and crashed before retiring its
    ticket/claim loses no work: the scavenger retires the claim against
    the result record instead of re-running the job."""
    job = _jobs()[0]
    name = queue.enqueue(job)
    item = queue.claim("w0")
    # Simulate the crash window inside complete(): result written, ticket
    # and claim still standing.
    queue._put_json(f"results/{item.key}.json", {
        "result": execute_job(job).to_record(), "cached": False,
        "worker": "w0", "attempts": 1})
    assert queue.counts()["claimed"] == 1
    clock.advance(11.0)
    assert queue.requeue_expired() == []  # retired, not requeued
    assert queue.drained()
    assert queue.counts()["done"] == 1
    assert queue.results()[job.job_id].ok
    assert name not in queue._names("claims")


def test_crashed_bury_is_healed_from_the_dead_record(queue, clock):
    """Crash between writing dead/<key> and deleting the bookkeeping: the
    dead record is authoritative and the scavenger finishes the burial."""
    job = _jobs()[0]
    name = queue.enqueue(job)
    assert queue.claim("w0") is not None
    queue._put_json(f"dead/{job.job_id}.json",
                    {"job": job.to_record(), "error": "x", "attempts": 3})
    clock.advance(11.0)
    assert queue.requeue_expired() == []
    assert queue.drained()
    assert queue.counts() == {"pending": 0, "claimed": 0, "done": 0, "dead": 1}


def test_corrupt_job_record_is_dead_lettered_not_fatal(queue):
    """Only the immutable spec's corruption buries a job — nothing is left
    to execute — and the rest of the queue keeps flowing."""
    jobs = _jobs()
    for job in jobs:
        queue.enqueue(job)
    queue.transport.put(f"jobs/{jobs[0].job_id}.json", b"{ truncated")
    claimed = []
    while True:
        item = queue.claim("w0")
        if item is None:
            break
        queue.complete(item, execute_job(item.job))
        claimed.append(item.key)
    assert len(claimed) == 3  # the other three jobs were unaffected
    assert queue.counts()["dead"] == 1
    assert "corrupt job record" in queue.dead()[jobs[0].job_id]["error"]


def test_foreign_documents_in_state_prefixes_are_ignored(queue):
    queue.transport.put("pending/README.json", b"{}")  # no priority prefix
    queue.transport.put("pending/notes.txt", b"hi")    # not even JSON-named
    assert queue.claim("w0") is None
    job = _jobs()[0]
    queue.enqueue(job)
    assert queue.claim("w0") is not None


def test_queue_config_is_shared_across_opens(make_transport):
    WorkQueue(transport=make_transport(), lease_seconds=5.0, max_attempts=7)
    reopened = WorkQueue(transport=make_transport(), lease_seconds=99.0,
                         max_attempts=1)
    assert reopened.lease_seconds == 5.0
    assert reopened.max_attempts == 7


def test_invalid_config_is_rejected_without_poisoning_the_store(make_transport):
    with pytest.raises(ValueError):
        WorkQueue(transport=make_transport(), lease_seconds=0.0)
    # The bad call must not have persisted its config: a valid open works.
    queue = WorkQueue(transport=make_transport(), lease_seconds=5.0)
    assert queue.lease_seconds == 5.0


def test_corrupt_result_document_is_skipped(queue):
    job = _jobs()[0]
    queue.enqueue(job)
    item = queue.claim("w0")
    queue.complete(item, execute_job(item.job))
    queue.transport.put(f"results/{job.job_id}.json", b"{ nope")
    assert queue.results() == {}  # unreadable record, not a crash


# -- cost model -------------------------------------------------------------

def test_cost_model_orders_longest_first(tmp_path):
    jobs = _jobs()
    model = CostModel(tmp_path / "costmodel.json")
    walls = [0.5, 8.0, 2.0, 4.0]
    for job, wall in zip(jobs, walls):
        model.observe(JobResult(job_id=job.job_id, case=job.case,
                                params=job.params, seed=job.seed,
                                metrics={}, wall_time=wall))
    ordered = model.order(jobs)
    assert [model.estimate(job) for job in ordered] == sorted(walls,
                                                              reverse=True)
    model.save()

    # Reload: exact estimates survive, unseen jobs fall back to case mean.
    reloaded = CostModel(tmp_path / "costmodel.json")
    assert reloaded.estimate(jobs[1]) == 8.0
    unseen = _spec(grid={"workers": [5], "tasks": [99]}).expand()[0]
    assert reloaded.estimate(unseen) == pytest.approx(sum(walls) / len(walls))


def test_cost_model_ignores_cached_results_and_survives_corruption(tmp_path):
    path = tmp_path / "costmodel.json"
    model = CostModel(path)
    job = _jobs()[0]
    model.observe(JobResult(job_id=job.job_id, case=job.case,
                            params=job.params, seed=job.seed,
                            wall_time=3.0, cached=True))
    assert model.estimate(job) == 1.0  # cached runs teach nothing
    path.write_text("garbage{", encoding="utf-8")
    assert CostModel(path).estimate(job) == 1.0  # corrupt model == empty
    # Valid JSON with corrupt field types must degrade, not raise.
    path.write_text(json.dumps({
        "exact": {"a-job": "fast", "b-job": True},
        "cases": {"synthetic": {"count": None, "mean": "oops"},
                  "platform": "not-a-dict"},
    }), encoding="utf-8")
    assert CostModel(path).estimate(job) == 1.0
    # Non-finite values round-trip through json; they must be dropped, and
    # the priority encoding must clamp rather than overflow either way.
    path.write_text(json.dumps({
        "exact": {job.job_id: float("inf")},
        "cases": {"synthetic": {"count": 1.0, "mean": float("nan")}},
    }), encoding="utf-8")
    assert CostModel(path).estimate(job) == 1.0
    for weird in (float("inf"), float("-inf"), float("nan")):
        assert len(priority_for_cost(weird)) == 10
