"""Unit and crash-consistency tests for the content-hash result cache.

Since the cache rides the queue's transport seam, the whole suite runs
three times — over the filesystem, in-memory and HTTP-broker transports —
the same way the queue suites do: broker-wide deduplication is only real
if a cache behind ``http://`` honors the identical contract as a cache
directory.  Corruption is injected through the transport
(``transport.put`` of garbage bytes), which reaches all three backends
identically; filesystem-specific behavior (path layout, tilde expansion,
leftover temp files) keeps its own tests at the bottom.
"""

import json
import threading

import pytest

from repro.campaign import (
    MemoryTransport,
    ResultCache,
    SweepSpec,
    TransportResultCache,
    open_cache,
    run_campaign,
)
from repro.campaign import WorkQueue
from repro.campaign.dist.server import Broker
from repro.campaign.dist.transport import HttpTransport, TransportError
from repro.campaign.executors import SerialExecutor
from repro.campaign.jsonio import json_dumps_bytes

TRANSPORTS = ("fs", "memory", "http")


def _spec(**overrides):
    kwargs = dict(name="cache-spec", case="synthetic",
                  base={"rate": 150.0},
                  grid={"workers": [1, 2], "tasks": [4, 8]})
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


def _job(spec=None):
    return (spec or _spec()).expand()[0]


def _record(job, wall_time=0.25, **metrics):
    return {"result": {"job_id": job.job_id, "case": job.case,
                       "params": dict(job.params), "seed": job.seed,
                       "metrics": dict(metrics) or {"makespan": 1.5},
                       "wall_time": wall_time, "error": None}}


@pytest.fixture(params=TRANSPORTS)
def cache(request, tmp_path):
    if request.param == "fs":
        yield ResultCache(tmp_path / "cache")
    elif request.param == "memory":
        yield TransportResultCache(MemoryTransport())
    else:
        broker = Broker().start()
        try:
            yield TransportResultCache(
                HttpTransport(broker.url, retries=2, retry_delay=0.05))
        finally:
            broker.stop()


# -- the cache contract, transport-independent -------------------------------

def test_put_get_round_trip(cache):
    job = _job()
    assert cache.get(job) is None
    cache.put(job, _record(job, makespan=1.5))
    record = cache.get(job)
    assert record is not None
    assert record["result"]["metrics"] == {"makespan": 1.5}
    assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}


def test_key_depends_on_params_seed_and_physics(cache):
    jobs = _spec().expand()
    assert cache.key(jobs[0]) != cache.key(jobs[1])
    reseeded = _spec(seed=321).expand()[0]
    assert cache.key(jobs[0]) != cache.key(reseeded)
    new_physics = TransportResultCache(cache.transport,
                                       physics_version="next")
    assert cache.key(jobs[0]) != new_physics.key(jobs[0])


def test_corrupt_entry_is_a_miss(cache):
    job = _job()
    cache.put(job, _record(job))
    cache.transport.put(cache.storage_key(job), b"{ not json")
    assert cache.get(job) is None
    assert cache.misses >= 1


def test_torn_and_empty_entries_are_misses_then_healed(cache):
    """Crash consistency: a partially written or zero-length record must
    be treated as a miss — and a subsequent put() repairs the entry, even
    though creation is normally a conditional create (the torn key exists,
    so the CAS conflicts; healing must overwrite anyway)."""
    job = _job()
    record = _record(job, makespan=2.5)
    key = cache.storage_key(job)
    full = json_dumps_bytes({**record, "job": job.to_record(),
                             "physics": cache.physics_version})

    cache.transport.put(key, full[: len(full) // 2])  # torn write
    assert cache.get(job) is None
    cache.transport.put(key, b"")  # zero-length record
    assert cache.get(job) is None

    cache.put(job, record)
    assert cache.get(job)["result"]["metrics"] == {"makespan": 2.5}


def test_mismatched_entry_is_a_miss(cache):
    """A record whose stored job differs from the probe is rejected."""
    job = _job()
    cache.put(job, _record(job))
    key = cache.storage_key(job)
    stored = json.loads(cache.transport.get(key)[0].decode("utf-8"))
    stored["job"]["params"] = {"tampered": True}
    cache.transport.put(key, json.dumps(stored).encode("utf-8"))
    assert cache.get(job) is None


def test_two_writers_race_one_record(cache):
    """The CAS case behind broker-wide dedup: two workers that both
    executed the same job race their put() — the conditional create lets
    exactly one record land, and the loser adopts it instead of
    clobbering (stored bytes stay the winner's)."""
    job = _job()
    first = _record(job, wall_time=0.125, makespan=3.0)
    second = _record(job, wall_time=9.0, makespan=3.0)  # same content job
    cache.put(job, first)
    winner_bytes = cache.transport.get(cache.storage_key(job))[0]
    cache.put(job, second)  # the racing loser
    assert cache.transport.get(cache.storage_key(job))[0] == winner_bytes
    assert len(cache) == 1
    assert cache.get(job)["result"]["wall_time"] == 0.125


def test_concurrent_writers_converge_to_one_record(cache):
    """N threads putting the same key through the live transport: exactly
    one stored record, no torn state, every subsequent probe a hit."""
    job = _job()
    threads = [threading.Thread(
        target=cache.put, args=(job, _record(job, wall_time=0.1 * (i + 1))))
        for i in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30.0)
    assert len(cache) == 1
    assert cache.get(job)["result"]["metrics"] == {"makespan": 1.5}


def test_second_campaign_run_served_entirely_from_cache(cache):
    spec = _spec()
    first = run_campaign(spec, executor=SerialExecutor(), cache=cache)
    assert (first.cache_hits, first.cache_misses) == (0, 4)
    second = run_campaign(spec, executor=SerialExecutor(), cache=cache)
    assert (second.cache_hits, second.cache_misses) == (4, 0)
    assert all(result.cached for result in second)
    assert second.aggregate_fingerprint() == first.aggregate_fingerprint()


def test_changed_grid_point_recomputes_only_that_job(cache):
    run_campaign(_spec(), cache=cache)
    widened = _spec(grid={"workers": [1, 2], "tasks": [4, 8, 16]})
    result = run_campaign(widened, cache=cache)
    assert result.cache_hits == 4
    assert result.cache_misses == 2


def test_schema_stale_cache_record_is_recomputed_not_fatal(cache):
    """A record whose job spec matches but whose result payload misses
    required fields (older/newer schema) must be treated as a miss."""
    job = _job()
    cache.put(job, {"result": {"job_id": job.job_id}})  # no case/params/seed
    result = run_campaign(_spec(), cache=cache)
    assert result.ok
    assert result.cache_hits == 0  # the stale record did not serve (or crash)


def test_schema_stale_record_is_healed_by_the_next_put(cache):
    """A record whose job matches but whose result payload is unservable
    (older schema) must not be *adopted* by put()'s CAS-conflict path —
    pre-transport caches healed it by overwrite, and so must we, or the
    key re-executes on every campaign forever."""
    job = _job()
    cache.put(job, {"result": {"job_id": job.job_id}})  # unservable result
    run_campaign(_spec(), cache=cache)  # miss → re-execute → healing put
    second = run_campaign(_spec(), cache=cache)
    assert (second.cache_hits, second.cache_misses) == (4, 0)


def test_clear_and_len_touch_only_entries(cache):
    run_campaign(_spec(), cache=cache)
    # The keyspace may be shared (cost model beside the entries, a queue
    # on the same broker): bookkeeping must not count or delete those.
    cache.transport.put("costmodel.json", b'{"exact": {}}')
    cache.transport.put("queue.json", b'{"lease_seconds": 30.0}')
    assert len(cache) == 4
    assert cache.clear() == 4
    assert len(cache) == 0
    assert cache.transport.get("costmodel.json") is not None


def test_get_many_probes_in_batches_not_per_job():
    """The campaign probe loop must not pay one round trip per job: the
    whole grid's probes travel through the transport's batch primitive
    (one ``/batch`` request per chunk over the broker), never per-key
    ``get`` calls."""
    class CountingTransport(MemoryTransport):
        def __init__(self):
            super().__init__()
            self.gets = 0
            self.batches = 0

        def get(self, key):
            self.gets += 1
            return super().get(key)

        def get_many(self, keys):
            self.batches += 1
            return super().get_many(keys)

    transport = CountingTransport()
    cache = TransportResultCache(transport)
    jobs = _spec().expand()

    cold = cache.get_many(jobs)
    assert cold == [None] * len(jobs)
    assert transport.gets == 0      # no per-key round trips
    assert transport.batches == 1   # the whole grid in one batch
    assert cache.misses == len(jobs)

    for job in jobs:
        cache.put(job, _record(job))
    transport.gets = transport.batches = 0
    warm = cache.get_many(jobs)
    assert all(record is not None for record in warm)
    assert transport.gets == 0
    assert transport.batches == 1
    assert cache.hits == len(jobs)


# -- the open_cache factory ---------------------------------------------------

def test_open_cache_dispatch(tmp_path):
    fs = open_cache(tmp_path / "cache-dir")
    assert isinstance(fs, ResultCache)
    assert fs.root == tmp_path / "cache-dir"
    assert fs.address == str(tmp_path / "cache-dir")

    http = open_cache("http://example.invalid:9")
    assert isinstance(http, TransportResultCache)
    assert isinstance(http.transport, HttpTransport)
    assert http.address == "http://example.invalid:9"
    assert http.root is None

    shared = MemoryTransport()
    wrapped = open_cache(shared)
    assert isinstance(wrapped, TransportResultCache)
    assert wrapped.transport is shared
    assert wrapped.address is None

    assert open_cache(wrapped) is wrapped  # existing caches pass through


def test_open_cache_serves_hits_across_transport_views(tmp_path):
    """One store, two views: entries written through a plain directory
    cache are served through a broker whose --data-dir is that directory —
    the layout is the transport seam's shared contract."""
    root = tmp_path / "cache"
    direct = open_cache(root)
    job = _job()
    direct.put(job, _record(job, makespan=4.0))
    with Broker(data_dir=root) as broker:
        via_broker = open_cache(broker.url)
        record = via_broker.get(job)
        assert record is not None
        assert record["result"]["metrics"] == {"makespan": 4.0}
        assert len(via_broker) == 1


def test_unreachable_broker_cache_raises_transport_error():
    cache = open_cache("http://127.0.0.1:1", retries=1, retry_delay=0.01)
    with pytest.raises(TransportError, match="unreachable"):
        cache.get(_job())


def test_worker_cli_exits_cleanly_on_unreachable_cache_broker(tmp_path,
                                                             capsys):
    """--cache follows --queue's exit-code contract: a dead cache broker
    is exit 3 plus a one-line message, never a traceback."""
    from repro.campaign.dist import worker as worker_cli

    # The cache is only probed once a job is claimed: enqueue one so the
    # worker actually reaches for the dead broker.
    WorkQueue(tmp_path / "q").enqueue(_job())
    code = worker_cli.main(["--queue", str(tmp_path / "q"),
                            "--cache", "http://127.0.0.1:1",
                            "--transport-retries", "0", "--quiet",
                            "--exit-when-drained"])
    assert code == worker_cli.EXIT_TRANSPORT_ERROR == 3
    err = capsys.readouterr().err
    assert "cache 'http://127.0.0.1:1'" in err
    assert "Traceback" not in err


def test_worker_cli_blames_queue_not_prefix_cache(tmp_path, capsys):
    """Exact address attribution: when the *queue* fails and the cache's
    path happens to be a prefix of the queue's, the message must still
    blame the queue — substring matching would send the operator
    debugging the healthy store."""
    from repro.campaign.dist import worker as worker_cli

    blocker = tmp_path / "blocker"
    blocker.write_text("file, not directory", encoding="utf-8")
    code = worker_cli.main(["--queue", str(blocker / "q"),
                            "--cache", str(tmp_path), "--quiet"])
    assert code == worker_cli.EXIT_TRANSPORT_ERROR == 3
    err = capsys.readouterr().err
    assert f"cannot reach queue {str(blocker / 'q')!r}" in err


# -- per-run accounting -------------------------------------------------------

def test_campaign_meta_reports_per_run_probe_stats(tmp_path):
    """The instance counters are per-process and cumulative;
    CampaignResult.meta["cache"] carries the authoritative per-run stats
    counted from the orchestrator's actual probes."""
    spec = _spec()
    first = run_campaign(spec, cache=ResultCache(tmp_path))
    assert first.meta["cache"] == {"enabled": True, "probes": 4,
                                   "hits": 0, "misses": 4}
    # A *fresh* cache instance (fresh process, in the distributed case)
    # has zeroed counters — meta still reports the run's true hits.
    second = run_campaign(spec, cache=ResultCache(tmp_path))
    assert second.meta["cache"] == {"enabled": True, "probes": 4,
                                    "hits": 4, "misses": 0}
    uncached = run_campaign(spec)
    assert uncached.meta["cache"]["enabled"] is False


# -- filesystem-specific behavior ---------------------------------------------

def test_fs_layout_path_and_put_return(tmp_path):
    """ResultCache keeps the original on-disk contract: put returns the
    entry's Path, path() predicts it, and the two-level fan-out matches
    the storage key."""
    cache = ResultCache(tmp_path)
    job = _job()
    path = cache.put(job, _record(job))
    key = cache.key(job)
    assert path == tmp_path / key[:2] / f"{key}.json"
    assert cache.path(job) == path
    assert path.is_file()


def test_explicit_root_expands_tilde(monkeypatch, tmp_path):
    """ResultCache('~/...') (the README usage) must land in the home
    directory, not create a literal '~' directory in the CWD."""
    monkeypatch.setenv("HOME", str(tmp_path))
    cache = ResultCache("~/cache-root")
    assert cache.root == tmp_path / "cache-root"


def test_leftover_tmp_files_are_invisible(tmp_path):
    """A crash between tmp-write and rename leaves a *.tmp.<pid> file that
    neither counts as an entry nor breaks probes of the real key."""
    cache = ResultCache(tmp_path)
    job = _job()
    tmp = cache.path(job).with_suffix(".tmp.12345")
    tmp.parent.mkdir(parents=True, exist_ok=True)
    tmp.write_text('{"result": {"half": true', encoding="utf-8")
    assert cache.get(job) is None
    assert len(cache) == 0
    cache.put(job, _record(job))
    assert len(cache) == 1
    assert cache.get(job) is not None


def test_unwritable_cache_dir_raises_transport_error(tmp_path):
    """An unwritable cache location fails like an unreachable broker —
    TransportError, which the worker CLI maps to exit 3."""
    blocker = tmp_path / "not-a-dir"
    blocker.write_text("file, not directory", encoding="utf-8")
    with pytest.raises(TransportError, match="cannot create"):
        ResultCache(blocker / "cache")
