"""Unit tests for the content-hash result cache."""

import json

import pytest

from repro.campaign import ResultCache, SweepSpec, run_campaign
from repro.campaign.executors import SerialExecutor


def _spec(**overrides):
    kwargs = dict(name="cache-spec", case="synthetic",
                  base={"rate": 150.0},
                  grid={"workers": [1, 2], "tasks": [4, 8]})
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


def _job(spec=None):
    return (spec or _spec()).expand()[0]


def test_put_get_round_trip(tmp_path):
    cache = ResultCache(tmp_path)
    job = _job()
    assert cache.get(job) is None
    cache.put(job, {"result": {"job_id": job.job_id, "case": job.case,
                               "params": dict(job.params), "seed": job.seed,
                               "metrics": {"makespan": 1.5}}})
    record = cache.get(job)
    assert record is not None
    assert record["result"]["metrics"] == {"makespan": 1.5}
    assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}


def test_key_depends_on_params_seed_and_physics(tmp_path):
    cache = ResultCache(tmp_path)
    jobs = _spec().expand()
    assert cache.key(jobs[0]) != cache.key(jobs[1])
    reseeded = _spec(seed=321).expand()[0]
    assert cache.key(jobs[0]) != cache.key(reseeded)
    new_physics = ResultCache(tmp_path, physics_version="next")
    assert cache.key(jobs[0]) != new_physics.key(jobs[0])


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    job = _job()
    path = cache.put(job, {"result": {"job_id": job.job_id, "case": job.case,
                                      "params": dict(job.params),
                                      "seed": job.seed, "metrics": {}}})
    path.write_text("{ not json", encoding="utf-8")
    assert cache.get(job) is None
    assert cache.misses >= 1


def test_truncated_and_empty_entries_are_misses_then_recoverable(tmp_path):
    """Crash consistency: a partially written or zero-length record must be
    treated as a miss — and a subsequent put() repairs the entry."""
    cache = ResultCache(tmp_path)
    job = _job()
    record = {"result": {"job_id": job.job_id, "case": job.case,
                         "params": dict(job.params), "seed": job.seed,
                         "metrics": {"makespan": 2.5}}}
    path = cache.put(job, record)

    full = path.read_text(encoding="utf-8")
    path.write_text(full[: len(full) // 2], encoding="utf-8")  # torn write
    assert cache.get(job) is None
    path.write_text("", encoding="utf-8")  # zero-length file
    assert cache.get(job) is None

    cache.put(job, record)
    assert cache.get(job)["result"]["metrics"] == {"makespan": 2.5}


def test_leftover_tmp_files_are_invisible(tmp_path):
    """A crash between tmp-write and rename leaves a *.tmp.<pid> file that
    neither counts as an entry nor breaks probes of the real key."""
    cache = ResultCache(tmp_path)
    job = _job()
    tmp = cache.path(job).with_suffix(".tmp.12345")
    tmp.parent.mkdir(parents=True, exist_ok=True)
    tmp.write_text('{"result": {"half": true', encoding="utf-8")
    assert cache.get(job) is None
    assert len(cache) == 0
    cache.put(job, {"result": {"job_id": job.job_id, "case": job.case,
                               "params": dict(job.params), "seed": job.seed,
                               "metrics": {}}})
    assert len(cache) == 1
    assert cache.get(job) is not None


def test_mismatched_entry_is_a_miss(tmp_path):
    """A record whose stored job differs from the probe is rejected."""
    cache = ResultCache(tmp_path)
    job = _job()
    path = cache.put(job, {"result": {"job_id": job.job_id, "case": job.case,
                                      "params": dict(job.params),
                                      "seed": job.seed, "metrics": {}}})
    record = json.loads(path.read_text(encoding="utf-8"))
    record["job"]["params"] = {"tampered": True}
    path.write_text(json.dumps(record), encoding="utf-8")
    assert cache.get(job) is None


def test_second_campaign_run_served_entirely_from_cache(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _spec()
    first = run_campaign(spec, executor=SerialExecutor(), cache=cache)
    assert (first.cache_hits, first.cache_misses) == (0, 4)
    second = run_campaign(spec, executor=SerialExecutor(), cache=cache)
    assert (second.cache_hits, second.cache_misses) == (4, 0)
    assert all(result.cached for result in second)
    assert second.aggregate_fingerprint() == first.aggregate_fingerprint()


def test_changed_grid_point_recomputes_only_that_job(tmp_path):
    cache = ResultCache(tmp_path)
    run_campaign(_spec(), cache=cache)
    widened = _spec(grid={"workers": [1, 2], "tasks": [4, 8, 16]})
    result = run_campaign(widened, cache=cache)
    assert result.cache_hits == 4
    assert result.cache_misses == 2


def test_campaign_meta_reports_per_run_probe_stats(tmp_path):
    """The instance counters on ResultCache are per-process and cumulative;
    CampaignResult.meta["cache"] carries the authoritative per-run stats
    counted from the orchestrator's actual probes."""
    spec = _spec()
    first = run_campaign(spec, cache=ResultCache(tmp_path))
    assert first.meta["cache"] == {"enabled": True, "probes": 4,
                                   "hits": 0, "misses": 4}
    # A *fresh* cache instance (fresh process, in the distributed case)
    # has zeroed counters — meta still reports the run's true hits.
    second = run_campaign(spec, cache=ResultCache(tmp_path))
    assert second.meta["cache"] == {"enabled": True, "probes": 4,
                                    "hits": 4, "misses": 0}
    uncached = run_campaign(spec)
    assert uncached.meta["cache"]["enabled"] is False


def test_explicit_root_expands_tilde(monkeypatch, tmp_path):
    """ResultCache('~/...') (the README usage) must land in the home
    directory, not create a literal '~' directory in the CWD."""
    monkeypatch.setenv("HOME", str(tmp_path))
    cache = ResultCache("~/cache-root")
    assert cache.root == tmp_path / "cache-root"


def test_schema_stale_cache_record_is_recomputed_not_fatal(tmp_path):
    """A record whose job spec matches but whose result payload misses
    required fields (older/newer schema) must be treated as a miss."""
    cache = ResultCache(tmp_path)
    job = _job()
    cache.put(job, {"result": {"job_id": job.job_id}})  # no case/params/seed
    result = run_campaign(_spec(), cache=cache)
    assert result.ok
    assert result.cache_hits == 0  # the stale record did not serve (or crash)


def test_clear_and_len(tmp_path):
    cache = ResultCache(tmp_path)
    run_campaign(_spec(), cache=cache)
    assert len(cache) == 4
    assert cache.clear() == 4
    assert len(cache) == 0
