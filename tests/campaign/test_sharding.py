"""Property tests for the shard router (``ShardedTransport``).

The sharding claim is an *equivalence* claim: a fleet of N stores behind
the router must be observationally identical to one store holding the
merged keyspace — for routing (total, stable, family-co-locating), for
scatter-gather reads (``list_page`` / ``get_many`` agree key-for-key,
including deletions between pages and continuation tokens that straddle
shard boundaries), and for the epoch handshake that turns a mis-shaped
fleet into a hard error instead of a silently split keyspace.
"""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import SweepSpec
from repro.campaign.dist import (
    ClaimUnsupported,
    MemoryTransport,
    ShardedTransport,
    TransportError,
    WorkQueue,
)
from repro.campaign.dist.sharding import (
    EPOCH_KEY,
    fleet_epoch,
    routing_key,
    split_shard_urls,
)
from repro.campaign.dist.transport import transport_from_address
from repro.campaign.jobs import execute_job

_KEY_ALPHABET = string.ascii_lowercase + string.digits + "/-_."

keys_strategy = st.text(alphabet=_KEY_ALPHABET, min_size=1, max_size=40)


def _router(n=2, shards=None):
    shards = shards if shards is not None else [MemoryTransport()
                                                for _ in range(n)]
    return ShardedTransport(shards), shards


# -- routing: total, stable, pure ---------------------------------------------

@settings(max_examples=100, deadline=None)
@given(key=keys_strategy)
def test_routing_is_total_and_stable(key):
    """Every key routes to exactly one shard, and a *fresh* router over
    the same fleet shape gives the same answer — routing is a pure
    function of (ordered shard list, key), never of instance state."""
    router, shards = _router(3)
    index = router.shard_index(key)
    assert 0 <= index < 3
    again, _ = _router(3, shards=shards)
    assert again.shard_index(key) == index
    # Pure in the fleet *shape*, not the shard objects: a router over
    # three different stores maps the key identically.
    other, _ = _router(3)
    assert other.shard_index(key) == index


@settings(max_examples=100, deadline=None)
@given(job_key=st.text(alphabet="abcdef0123456789", min_size=1, max_size=16),
       priority=st.integers(min_value=0, max_value=9_999_999_999))
def test_job_document_family_co_locates(job_key, priority):
    """All documents of one job — record, ticket, claim, result, done
    marker, dead-letter — route to the same shard.  This is the property
    that keeps a shard-local ``POST /claim`` correct: the broker that
    claims a ticket must hold that job's immutable record too."""
    router, _ = _router(3)
    name = f"{priority:010d}-{job_key}"
    family = [
        f"jobs/{job_key}.json",
        f"pending/{name}.json",
        f"claims/{name}.json",
        f"results/{job_key}.json",
        f"done/{name}.json",
        f"dead/{job_key}.json",
    ]
    owners = {router.shard_index(key) for key in family}
    assert len(owners) == 1
    assert routing_key(f"pending/{name}.json") == job_key


def test_written_keyspace_partitions_across_shards():
    """Through the router every key lands on exactly one shard, and the
    shards' union is exactly the written keyspace."""
    router, shards = _router(2)
    written = sorted(f"p/{i:03d}.json" for i in range(64))
    for key in written:
        router.put(key, b"{}")
    per_shard = [shard.list("p/") for shard in shards]
    assert sorted(key for listing in per_shard for key in listing) == written
    for key in written:
        assert sum(key in listing for listing in per_shard) == 1
    assert all(per_shard), "64 keys must not all hash to one shard"
    assert router.list("p/") == written


# -- scatter-gather agrees with a single merged store -------------------------

def _mirror(keys):
    """The same keyspace on one store and on a 2-shard router."""
    single = MemoryTransport()
    router, _ = _router(2)
    for key in keys:
        single.put(key, b"{}")
        router.put(key, b"{}")
    return single, router


def _walk(transport, prefix, page_size, mutate_between=None):
    seen, start_after, pages = [], "", 0
    while True:
        page, token = transport.list_page(prefix, page_size,
                                          start_after=start_after)
        seen.extend(page)
        pages += 1
        if mutate_between is not None:
            mutate_between(pages)
        if token is None:
            return seen
        start_after = token


@pytest.mark.parametrize("page_size", [1, 2, 3, 7, 100])
def test_sharded_list_page_agrees_key_for_key(page_size):
    keys = sorted(f"p/{i:03d}.json" for i in range(23))
    single, router = _mirror(keys)
    assert _walk(router, "p/", page_size) == _walk(single, "p/", page_size)
    assert _walk(router, "p/", page_size) == keys


@settings(max_examples=60, deadline=None)
@given(start_after=st.text(alphabet=_KEY_ALPHABET, max_size=12),
       max_keys=st.integers(min_value=1, max_value=30))
def test_sharded_list_page_tokens_straddle_shard_boundaries(start_after,
                                                            max_keys):
    """Any resumption point — including tokens naming keys owned by one
    specific shard, or strings that are no key at all — yields the same
    page a single merged store would serve."""
    keys = sorted(f"p/{i:03d}.json" for i in range(23))
    single, router = _mirror(keys)
    assert (router.list_page("p/", max_keys, start_after=start_after)[0]
            == single.list_page("p/", max_keys, start_after=start_after)[0])


def test_sharded_list_page_deletions_between_pages():
    """Keys deleted between pages — on either shard, including the key
    the continuation token names — never skip or repeat survivors,
    exactly as on a single store."""
    keys = sorted(f"p/{i:03d}.json" for i in range(20))
    single, router = _mirror(keys)

    doomed = [keys[2], keys[3], keys[9], keys[15]]

    def killer(transport):
        def mutate(pages_served):
            if pages_served == 1:
                for key in doomed:
                    transport.delete(key)
        return mutate

    survivors = [key for key in keys if key not in doomed]
    single_seen = _walk(single, "p/", 3, mutate_between=killer(single))
    router_seen = _walk(router, "p/", 3, mutate_between=killer(router))
    assert router_seen == single_seen
    # Pagination contract: everything that survived the deletions and
    # was not already served is seen exactly once.
    assert [key for key in router_seen if key in survivors] == survivors


def test_sharded_list_page_token_key_deleted_mid_walk():
    """Deleting the exact key a token names (keyset tokens survive this
    by construction) behaves identically across router and single store."""
    keys = sorted(f"p/{i:03d}.json" for i in range(10))
    single, router = _mirror(keys)
    for transport in (single, router):
        page, token = transport.list_page("p/", 4)
        assert page == keys[:4] and token == keys[3]
        transport.delete(token)
        rest, _ = transport.list_page("p/", 100, start_after=token)
        assert rest == keys[4:]


@settings(max_examples=60, deadline=None)
@given(probe=st.lists(st.integers(min_value=0, max_value=40),
                      min_size=1, max_size=25))
def test_sharded_get_many_agrees_key_for_key(probe):
    """``get_many`` over any mix of present and absent keys (duplicates
    included) returns exactly what one merged store returns, in order."""
    keys = sorted(f"p/{i:03d}.json" for i in range(23))
    single, router = _mirror(keys)
    wanted = [f"p/{i:03d}.json" for i in probe]  # i>22 -> absent
    assert router.get_many(wanted) == single.get_many(wanted)


# -- epoch / drain protocol ---------------------------------------------------

def test_epoch_mismatch_is_a_hard_error():
    """A shard stamped by a differently-shaped fleet refuses to serve a
    new router until drained: re-pointing it silently would split the
    keyspace.  The handshake is lazy — construction is free, the first
    routed operation stamps or raises."""
    shards = [MemoryTransport(), MemoryTransport()]
    ShardedTransport(shards).put("jobs/a.json", b"{}")  # stamps 2-epoch
    grown = ShardedTransport(shards + [MemoryTransport()])
    with pytest.raises(TransportError, match="different fleet epoch"):
        grown.get("jobs/a.json")
    shrunk = ShardedTransport([shards[0]])  # shrinking is just as wrong
    with pytest.raises(TransportError, match="different fleet epoch"):
        shrunk.list("jobs/")
    # Same shape, fresh router: welcome back.
    again = ShardedTransport(shards)
    assert again.get("jobs/a.json") is not None
    assert again.epoch == fleet_epoch(again.identities)


def test_drain_protocol_unsticks_a_resharded_fleet():
    """The documented drain recipe — delete ``meta/epoch`` on every
    shard — lets the same stores join a new fleet shape."""
    shards = [MemoryTransport(), MemoryTransport()]
    ShardedTransport(shards).put("jobs/a.json", b"{}")
    for shard in shards:
        assert shard.get(EPOCH_KEY) is not None
        shard.delete(EPOCH_KEY)
    grown = ShardedTransport(shards + [MemoryTransport()])
    assert grown.put("jobs/x.json", b"{}")


def test_epoch_stamp_heals_garbage():
    import json

    shards = [MemoryTransport(), MemoryTransport()]
    shards[0].put(EPOCH_KEY, b"\x00torn write, not JSON")
    router = ShardedTransport(shards)
    router.put("jobs/a.json", b"{}")  # first op runs the handshake
    stamped = json.loads(shards[0].get(EPOCH_KEY)[0])
    assert stamped["epoch"] == router.epoch


# -- claim semantics over mixed fleets ---------------------------------------

def test_sharded_claim_falls_back_client_side_and_drains():
    """Shards without a server-side claim make the router raise
    ``ClaimUnsupported`` — and the queue's client-side scan over the
    router still claims and settles every job exactly once."""
    router, _ = _router(2)
    with pytest.raises(ClaimUnsupported):
        router.claim_first()
    spec = SweepSpec(name="sharded", case="synthetic", base={"rate": 150.0},
                     grid={"workers": [1, 2], "tasks": [4, 8]})
    queue = WorkQueue(transport=router, lease_seconds=30.0)
    jobs = spec.expand()
    queue.enqueue_grid(jobs)
    seen = []
    while True:
        item = queue.claim("w0")
        if item is None:
            break
        queue.complete(item, execute_job(item.job))
        seen.append(item.key)
    assert len(seen) == len(set(seen)) == len(jobs)
    assert queue.drained()


# -- sharded fleet dashboard --------------------------------------------------

def test_sharded_stats_cli_aggregates_and_renders_per_shard(capsys):
    """``dist.stats`` pointed at a comma-separated shard list renders one
    aggregate line plus one row per shard (instead of crashing on the
    URL, the pre-sharding behavior), and the per-shard pending counts sum
    to the aggregate."""
    import re

    from repro.campaign.dist import HttpTransport
    from repro.campaign.dist.server import Broker
    from repro.campaign.dist.stats import main as stats_main

    brokers = [Broker().start(), Broker().start()]
    try:
        router = ShardedTransport(
            [HttpTransport(b.url, retries=2, retry_delay=0.05)
             for b in brokers])
        queue = WorkQueue(transport=router, lease_seconds=30.0)
        spec = SweepSpec(name="sharded-stats", case="synthetic",
                         base={"rate": 150.0},
                         grid={"workers": [1, 2, 3], "tasks": [4, 8]})
        queue.enqueue_grid(spec.expand())  # 6 jobs
        router.close()

        fleet = ",".join(b.url for b in brokers)
        assert stats_main([fleet]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3  # aggregate + one row per shard
        assert "pending 6" in lines[0]
        per_shard = []
        for broker, row in zip(brokers, lines[1:]):
            assert row.strip().startswith(f"shard {broker.url}")
            per_shard.append(int(re.search(r"pending (\d+)", row).group(1)))
        assert sum(per_shard) == 6
    finally:
        for broker in brokers:
            broker.stop()


def test_sharded_stats_cli_rejects_mixed_address_lists(capsys):
    from repro.campaign.dist.stats import main as stats_main

    assert stats_main(["http://a:1,/not/a/url"]) == 2
    assert "not a broker URL" in capsys.readouterr().err


# -- address dispatch ---------------------------------------------------------

def test_split_shard_urls_accepts_only_full_url_lists():
    assert split_shard_urls("http://a:1,http://b:2") == [
        "http://a:1", "http://b:2"]
    assert split_shard_urls("http://a:1, https://b:2 ") == [
        "http://a:1", "https://b:2"]
    assert split_shard_urls("http://a:1") is None
    assert split_shard_urls("http://a:1,/some/dir") is None
    assert split_shard_urls("dir/with,comma") is None
    assert split_shard_urls("http://a:1,") is None  # one URL, stray comma


def test_transport_from_address_sharded_dispatch(tmp_path):
    from repro.campaign.dist import FsTransport, HttpTransport

    # Construction never touches the network (the epoch handshake is
    # lazy), so dispatch is testable offline like the other transports.
    sharded = transport_from_address(
        "http://a.invalid:1,http://b.invalid:2", retries=0)
    assert isinstance(sharded, ShardedTransport)
    assert sharded.address == "http://a.invalid:1,http://b.invalid:2"
    assert isinstance(transport_from_address("http://a.invalid:1"),
                      HttpTransport)
    assert isinstance(transport_from_address(tmp_path / "with,comma"),
                      FsTransport)
