"""Broker network-core regression tests, run against BOTH cores.

The broker grew a second network core (asyncio selector loop alongside
the legacy ``ThreadingHTTPServer``) and a server-side claim endpoint.
Everything here is parametrized over both cores: the wire dialect, the
keep-alive desync hardening (malformed ``Content-Length``, bodies on
GET/DELETE), the ``Broker.stop()`` lifecycle guards, and the
``POST /claim`` contract — exactly-one-winner, drained → 204, corrupt
bookkeeping, the old-broker fallback, and fake clocks riding the wire.
"""

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.campaign import SweepSpec
from repro.campaign.dist import HttpTransport, WorkQueue
from repro.campaign.dist.server import Broker
from repro.campaign.dist.transport import ClaimUnsupported
from repro.campaign.jobs import execute_job

CORES = ["asyncio", "thread"]


def _spec(**overrides):
    kwargs = dict(name="core-spec", case="synthetic",
                  base={"rate": 150.0},
                  grid={"workers": [1, 2], "tasks": [4, 8]})
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


@pytest.fixture(params=CORES)
def broker(request):
    b = Broker(core=request.param).start()
    try:
        yield b
    finally:
        b.stop()


def _read_responses(stream, count):
    """Parse ``count`` HTTP responses off a raw socket file object."""
    out = []
    for _ in range(count):
        status_line = stream.readline()
        if not status_line:
            break
        headers = {}
        while True:
            line = stream.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        body = stream.read(length) if length else b""
        out.append((int(status_line.split()[1]), headers, body))
    return out


# -- core selection ----------------------------------------------------------

def test_core_selection_and_validation(monkeypatch):
    monkeypatch.delenv("REPRO_BROKER_CORE", raising=False)
    b = Broker()
    assert b.core == "asyncio"  # the default core
    b.stop()
    monkeypatch.setenv("REPRO_BROKER_CORE", "thread")
    b = Broker()
    assert b.core == "thread"  # env var steers the default (CI matrix)
    b.stop()
    b = Broker(core="asyncio")
    assert b.core == "asyncio"  # explicit arg beats the env var
    b.stop()
    with pytest.raises(ValueError, match="unknown broker core"):
        Broker(core="gevent")


# -- wire dialect smoke over both cores --------------------------------------

def test_wire_dialect_smoke(broker):
    transport = HttpTransport(broker.url, retries=1, retry_delay=0.05)
    assert transport.get("x.json") is None
    tag = transport.put("x.json", b"v1")
    assert transport.get("x.json") == (b"v1", tag)
    assert transport.cas("x.json", b"v2", if_match=None) is None
    assert transport.cas("x.json", b"v2", if_match=tag) is not None
    assert transport.list("") == ["x.json"]
    assert transport.list_page("", 10) == (["x.json"], None)
    assert transport.get_many(["x.json", "nope.json"]) == [
        (b"v2", transport.get("x.json")[1]), None]
    assert transport.delete("x.json")
    with urllib.request.urlopen(f"{broker.url}/healthz",
                                timeout=5.0) as response:
        assert json.loads(response.read()) == {"ok": True}


def test_unknown_method_and_path(broker):
    request = urllib.request.Request(f"{broker.url}/nope", method="GET")
    with pytest.raises(urllib.error.HTTPError) as caught:
        urllib.request.urlopen(request, timeout=5.0)
    assert caught.value.code == 404


# -- keep-alive desync hardening ---------------------------------------------

def test_malformed_content_length_gets_400_and_announced_close(broker):
    """Satellite regression: ``Content-Length: banana`` used to raise an
    unhandled ValueError — a 500 with the body bytes still in the stream,
    desyncing every later request on the connection.  The broker must
    answer 400, announce ``Connection: close``, and actually close."""
    with socket.create_connection((broker.host, broker.port),
                                  timeout=5.0) as sock:
        sock.sendall(b"PUT /k/x.json HTTP/1.1\r\n"
                     b"Host: h\r\n"
                     b"Content-Length: banana\r\n\r\n")
        stream = sock.makefile("rb")
        responses = _read_responses(stream, 1)
        assert len(responses) == 1
        status, headers, _ = responses[0]
        assert status == 400
        assert headers.get("connection") == "close"
        assert stream.read() == b""  # server closed; no stray bytes
    # The broker is not wedged: fresh connections serve normally.
    transport = HttpTransport(broker.url, retries=0)
    assert transport.get("x.json") is None


def test_negative_content_length_gets_400_and_announced_close(broker):
    with socket.create_connection((broker.host, broker.port),
                                  timeout=5.0) as sock:
        sock.sendall(b"PUT /k/x.json HTTP/1.1\r\n"
                     b"Host: h\r\n"
                     b"Content-Length: -7\r\n\r\n")
        stream = sock.makefile("rb")
        responses = _read_responses(stream, 1)
        assert [r[0] for r in responses] == [400]
        assert responses[0][1].get("connection") == "close"
        assert stream.read() == b""


def test_garbage_request_line_gets_400_not_a_hang(broker):
    # The legacy thread core's error page lacks a status line (stdlib
    # quirk), so only assert the essentials: a 400-ish refusal arrives
    # and the connection closes instead of wedging.
    with socket.create_connection((broker.host, broker.port),
                                  timeout=5.0) as sock:
        sock.sendall(b"THIS IS NOT HTTP\r\n\r\n")
        stream = sock.makefile("rb")
        data = stream.read()  # returns only because the server closed
    assert b"400" in data


def test_bodies_on_get_and_delete_do_not_desync_keepalive(broker):
    """Satellite regression: GET/DELETE handlers never drained request
    bodies, so a client that sent one desynced the keep-alive stream —
    the leftover bytes parsed as the next request line.  All three
    pipelined requests below must parse and answer in order."""
    transport = HttpTransport(broker.url, retries=0)
    transport.put("k.json", b"v")
    with socket.create_connection((broker.host, broker.port),
                                  timeout=5.0) as sock:
        sock.sendall(
            b"GET /k/k.json HTTP/1.1\r\nHost: h\r\n"
            b"Content-Length: 7\r\n\r\npayload"
            b"DELETE /k/k.json HTTP/1.1\r\nHost: h\r\n"
            b"Content-Length: 5\r\n\r\nhello"
            b"GET /healthz HTTP/1.1\r\nHost: h\r\n\r\n")
        stream = sock.makefile("rb")
        responses = _read_responses(stream, 3)
        assert [r[0] for r in responses] == [200, 204, 200]
        assert responses[0][2] == b"v"
        assert json.loads(responses[2][2]) == {"ok": True}


def test_post_to_unknown_path_drains_body_then_keeps_alive(broker):
    with socket.create_connection((broker.host, broker.port),
                                  timeout=5.0) as sock:
        sock.sendall(
            b"POST /not-an-endpoint HTTP/1.1\r\nHost: h\r\n"
            b"Content-Length: 9\r\n\r\nsome body"
            b"GET /healthz HTTP/1.1\r\nHost: h\r\n\r\n")
        stream = sock.makefile("rb")
        responses = _read_responses(stream, 2)
        assert [r[0] for r in responses] == [404, 200]


# -- Broker lifecycle --------------------------------------------------------

@pytest.mark.parametrize("core", CORES)
def test_stop_before_start_does_not_deadlock(core):
    """Satellite regression: ``stop()`` is documented idempotent but the
    thread core's ``shutdown()`` blocked forever when ``serve_forever``
    never ran.  Run stop on a helper thread and require it to finish."""
    broker = Broker(core=core)
    finished = []

    def stopper():
        broker.stop()
        finished.append(True)

    thread = threading.Thread(target=stopper, daemon=True)
    thread.start()
    thread.join(timeout=5.0)
    assert not thread.is_alive() and finished, \
        "stop() before start() must return, not deadlock"


@pytest.mark.parametrize("core", CORES)
def test_stop_is_idempotent_after_start(core):
    broker = Broker(core=core).start()
    transport = HttpTransport(broker.url, retries=0)
    transport.put("k.json", b"v")
    broker.stop()
    broker.stop()  # second stop must be a no-op, not a hang or a raise


# -- POST /claim contract ----------------------------------------------------

def test_claim_endpoint_wire_format(broker):
    """The raw wire contract: 200 + JSON outcome document on a win,
    204 with no body when drained."""
    transport = HttpTransport(broker.url, retries=1, retry_delay=0.05)
    queue = WorkQueue(transport=transport, lease_seconds=30.0)
    job = _spec().expand()[0]
    queue.enqueue(job, cost=2.5)
    request = urllib.request.Request(
        f"{broker.url}/claim?prefix=pending/&worker=wz", data=b"",
        method="POST")
    with urllib.request.urlopen(request, timeout=5.0) as response:
        assert response.status == 200
        outcome = json.loads(response.read())
    assert outcome["key"] == job.job_id
    assert outcome["name"].endswith(f"-{job.job_id}")
    assert outcome["attempts"] == 0
    assert outcome["cost"] == 2.5
    assert outcome["record"]["job"]["case"] == "synthetic"
    assert outcome["lease"]["worker"] == "wz"
    assert outcome["etag"]
    # Everything claimable is claimed: the next pass reports drained.
    with urllib.request.urlopen(request, timeout=5.0) as response:
        assert response.status == 204
        assert response.read() == b""


def test_claim_endpoint_validates_parameters(broker):
    for query in ("prefix=results/", "now=banana", "lease=banana",
                  "lease=-5", "lease=0", "now=inf"):
        request = urllib.request.Request(
            f"{broker.url}/claim?{query}", data=b"", method="POST")
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request, timeout=5.0)
        assert caught.value.code == 400, query


def test_claim_endpoint_exactly_one_winner_under_concurrency(broker):
    """Six threads hammering claim() against one broker: every job is
    claimed exactly once, all through the server-side fast path."""
    jobs = _spec().expand()
    setup = WorkQueue(
        transport=HttpTransport(broker.url, retries=2, retry_delay=0.05),
        lease_seconds=30.0)
    for job in jobs:
        setup.enqueue(job)

    claimed, lock = [], threading.Lock()
    queues = []

    def worker(wid):
        queue = WorkQueue(transport=HttpTransport(
            broker.url, retries=2, retry_delay=0.05))
        queues.append(queue)
        while True:
            item = queue.claim(f"w{wid}")
            if item is None:
                break
            with lock:
                claimed.append(item)

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)

    assert len(claimed) == len(jobs)
    assert len({item.key for item in claimed}) == len(jobs)
    assert setup.counts()["claimed"] == len(jobs)
    assert all(not queue._claim_fallback for queue in queues), \
        "claims must ride the server-side fast path, not the fallback"


def test_claim_endpoint_corrupt_ticket_claims_at_attempt_zero(broker):
    """A garbage pending ticket is requeueable bookkeeping, not poison:
    the server-side scan claims it with ``attempts == 0``."""
    transport = HttpTransport(broker.url, retries=1, retry_delay=0.05)
    queue = WorkQueue(transport=transport, lease_seconds=30.0)
    job = _spec().expand()[0]
    name = queue.enqueue(job)
    transport.put(f"pending/{name}.json", b"\x00 not json \x00")
    item = queue.claim("w0")
    assert item is not None
    assert item.key == job.job_id
    assert item.attempts == 0
    assert not queue._claim_fallback


def test_claim_endpoint_buries_corrupt_job_record_and_scans_on(broker):
    """A corrupt immutable job record dead-letters server-side and the
    scan continues to the next ticket — one request still wins a job."""
    transport = HttpTransport(broker.url, retries=1, retry_delay=0.05)
    queue = WorkQueue(transport=transport, lease_seconds=30.0)
    jobs = _spec().expand()[:2]
    names = [queue.enqueue(job) for job in jobs]
    first = min(names)  # the scan visits tickets in sorted order
    first_key = next(job.job_id for job, name in zip(jobs, names)
                     if name == first)
    transport.put(f"jobs/{first_key}.json", b"garbage")
    item = queue.claim("w0")
    assert item is not None
    assert item.name == max(names)
    assert first_key in queue.dead()
    assert "corrupt job record" in queue.dead()[first_key]["error"]


def test_claim_falls_back_against_old_broker(broker):
    """A broker without ``POST /claim`` answers 404: the transport
    raises ClaimUnsupported once, the queue memoizes the fallback, and
    claims keep working through the client-side scan."""
    broker.dialect.serve_claim = False  # simulate a pre-/claim broker
    transport = HttpTransport(broker.url, retries=1, retry_delay=0.05)
    queue = WorkQueue(transport=transport, lease_seconds=30.0)
    jobs = _spec().expand()[:2]
    for job in jobs:
        queue.enqueue(job)
    item = queue.claim("w0")
    assert item is not None
    assert queue._claim_fallback, "the 404 must memoize the fallback"
    with pytest.raises(ClaimUnsupported):
        transport.claim_first()  # memoized client-side: no round trip
    # Later claims go straight to the scan and still work.
    second = queue.claim("w0")
    assert second is not None and second.key != item.key
    queue.complete(item, execute_job(item.job))
    queue.complete(second, execute_job(second.job))
    assert queue.drained()


def test_fake_clock_and_lease_ride_the_claim_endpoint(broker):
    """``now`` and ``lease`` travel with the request, so lease expiry
    arithmetic over the wire matches the client-side scan exactly —
    including under an injected fake clock."""
    clock = [1000.0]
    queue = WorkQueue(
        transport=HttpTransport(broker.url, retries=1, retry_delay=0.05),
        lease_seconds=10.0, clock=lambda: clock[0])
    job = _spec().expand()[0]
    queue.enqueue(job)
    assert queue.claim("doomed") is not None
    assert not queue._claim_fallback
    assert queue.requeue_expired() == []  # lease live at fake-now
    clock[0] += 11.0
    assert queue.requeue_expired() == [job.job_id]
    retried = queue.claim("rescuer")
    assert retried is not None and retried.attempts == 1
    queue.complete(retried, execute_job(retried.job))
    assert queue.drained()
