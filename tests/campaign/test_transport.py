"""Transport-contract and transport-edge-case tests.

The queue's pluggability claim is only real if every backend honors the
same storage contract — in particular the conditional-create CAS that all
mutual exclusion rests on — and if the backends' *specific* failure modes
(a broker restart mid-lease, a torn filesystem write, concurrent
in-process claimants) leave the queue consistent.  The contract tests run
over all three transports; the edge-case tests target the backend that
owns each failure mode.
"""

import threading

import pytest

from repro.campaign import SweepSpec
from repro.campaign.dist import (
    FsTransport,
    HttpTransport,
    MemoryTransport,
    ShardedTransport,
    TransportError,
    WorkQueue,
    transport_from_address,
)
from repro.campaign.dist.server import Broker
from repro.campaign.dist.transport import etag_of
from repro.campaign.jobs import execute_job


def _spec(**overrides):
    kwargs = dict(name="transport-spec", case="synthetic",
                  base={"rate": 150.0},
                  grid={"workers": [1, 2], "tasks": [4, 8]})
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


@pytest.fixture(params=["fs", "memory", "http", "sharded-memory",
                        "sharded-http"])
def transport(request, tmp_path):
    """Every storage contract invariant below also runs over a 2-shard
    ``ShardedTransport`` (in-memory shards and live-broker shards): the
    router's scatter-gather and per-shard fan-out must be observationally
    identical to a single store."""
    if request.param == "fs":
        yield FsTransport(tmp_path / "store")
    elif request.param == "memory":
        yield MemoryTransport()
    elif request.param == "sharded-memory":
        yield ShardedTransport([MemoryTransport(), MemoryTransport()])
    elif request.param == "sharded-http":
        brokers = [Broker().start(), Broker().start()]
        try:
            yield ShardedTransport(
                [HttpTransport(b.url, retries=2, retry_delay=0.05)
                 for b in brokers])
        finally:
            for b in brokers:
                b.stop()
    else:
        broker = Broker().start()
        try:
            yield HttpTransport(broker.url, retries=2, retry_delay=0.05)
        finally:
            broker.stop()


# -- the storage contract ---------------------------------------------------

def test_get_put_roundtrip_with_content_etag(transport):
    assert transport.get("a/x.json") is None
    tag = transport.put("a/x.json", b'{"v": 1}')
    assert tag == etag_of(b'{"v": 1}')
    assert transport.get("a/x.json") == (b'{"v": 1}', tag)


def test_conditional_create_is_exclusive(transport):
    assert transport.cas("k.json", b"first", if_match=None) is not None
    assert transport.cas("k.json", b"second", if_match=None) is None
    assert transport.get("k.json")[0] == b"first"


def test_cas_update_requires_current_etag(transport):
    tag = transport.put("k.json", b"v1")
    assert transport.cas("k.json", b"v2", if_match="stale") is None
    assert transport.get("k.json")[0] == b"v1"
    new = transport.cas("k.json", b"v2", if_match=tag)
    assert new == etag_of(b"v2")
    assert transport.get("k.json")[0] == b"v2"
    # CAS against a missing key can never succeed with a concrete etag.
    assert transport.cas("missing.json", b"x", if_match=tag) is None


def test_conditional_delete(transport):
    tag = transport.put("k.json", b"v1")
    assert not transport.delete("k.json", if_match="stale")
    assert transport.get("k.json") is not None
    assert transport.delete("k.json", if_match=tag)
    assert transport.get("k.json") is None
    assert not transport.delete("k.json")  # already gone


def test_list_is_sorted_and_prefix_scoped(transport):
    for key in ("s/b.json", "s/a.json", "t/c.json"):
        transport.put(key, b"{}")
    assert transport.list("s/") == ["s/a.json", "s/b.json"]
    assert transport.list("t/") == ["t/c.json"]
    assert transport.list("nope/") == []


def test_etags_are_content_derived_across_transports(transport):
    """Identical bytes get identical ETags on every backend — the property
    that keeps leases valid across a broker restart."""
    data = b'{"worker": "w0", "expires_at": 99.0}'
    assert transport.put("claims/x.json", data) == etag_of(data)


# -- batch primitives --------------------------------------------------------

def test_get_many_preserves_order_and_absence(transport):
    tag_a = transport.put("b/a.json", b"A")
    tag_c = transport.put("b/c.json", b"C")
    got = transport.get_many(["b/c.json", "b/missing.json", "b/a.json"])
    assert got == [(b"C", tag_c), None, (b"A", tag_a)]
    assert transport.get_many([]) == []


def test_put_many_applies_per_item_conditions_in_order(transport):
    from repro.campaign.dist.transport import ANY

    tag = transport.put("c/k.json", b"v1")
    outcomes = transport.put_many([
        ("c/new.json", b"n", None),      # create: key absent -> wins
        ("c/new.json", b"x", None),      # create: now present -> conflict
        ("c/k.json", b"v2", tag),        # update at the current etag
        ("c/k.json", b"v3", "stale"),    # update at a stale etag
        ("c/any.json", b"a", ANY),       # unconditional
    ])
    assert outcomes[0] == etag_of(b"n")
    assert outcomes[1] is None
    assert outcomes[2] == etag_of(b"v2")
    assert outcomes[3] is None
    assert outcomes[4] == etag_of(b"a")
    assert transport.get("c/new.json")[0] == b"n"
    assert transport.get("c/k.json")[0] == b"v2"


def test_delete_many_is_conditional_per_item(transport):
    tag = transport.put("d/a.json", b"A")
    transport.put("d/b.json", b"B")
    assert transport.delete_many([
        ("d/a.json", "stale"),   # condition fails, key survives
        ("d/b.json", None),      # unconditional
        ("d/missing.json", None),
        ("d/a.json", tag),       # right etag now
    ]) == [False, True, False, True]
    assert transport.list("d/") == []


def test_mutate_many_mixes_writes_and_deletes_in_order(transport):
    """The mixed batch honors each op's own condition and applies in
    order — the primitive that lets a finished job settle (result +
    done marker + ticket/claim retirement) in one round trip."""
    from repro.campaign.dist.transport import ANY

    tag = transport.put("m/k.json", b"v1")
    transport.put("m/old.json", b"old")
    outcomes = transport.mutate_many([
        ("put", "m/result.json", b"R", ANY),       # unconditional write
        ("put", "m/done.json", b"{}", None),       # conditional create
        ("put", "m/done.json", b"x", None),        # create again -> conflict
        ("delete", "m/old.json", None),            # unconditional delete
        ("delete", "m/k.json", "stale"),           # conditional miss
        ("delete", "m/k.json", tag),               # conditional hit
        ("delete", "m/missing.json", None),        # absent key
    ])
    assert outcomes == [etag_of(b"R"), etag_of(b"{}"), None,
                        True, False, True, False]
    assert transport.get("m/result.json")[0] == b"R"
    assert transport.get("m/done.json")[0] == b"{}"
    assert transport.get("m/old.json") is None
    assert transport.get("m/k.json") is None
    assert transport.mutate_many([]) == []


def test_mutate_many_create_then_delete_same_key_applies_in_order(transport):
    """Ordering within one batch is observable: a create followed by a
    delete of the same key leaves the key absent, and both ops report
    success — proof the batch is not reordered or coalesced."""
    outcomes = transport.mutate_many([
        ("put", "seq/x.json", b"v", None),
        ("delete", "seq/x.json", None),
    ])
    assert outcomes == [etag_of(b"v"), True]
    assert transport.get("seq/x.json") is None


# -- retry backoff -----------------------------------------------------------

def test_backoff_delays_are_jittered_and_capped():
    """Satellite regression: deterministic ``retry_delay * 2**attempt``
    made a whole fleet retry in lockstep after a broker blip.  Delays
    must be drawn from ``[0, min(cap, base * 2**attempt)]`` — spread out
    (full jitter) and never above the cap."""
    transport = HttpTransport("http://127.0.0.1:1", retries=8,
                              retry_delay=0.5, retry_max_delay=2.0)
    for attempt in range(10):
        ceiling = min(2.0, 0.5 * (2 ** attempt))
        samples = [transport._backoff_delay(attempt) for _ in range(200)]
        assert all(0.0 <= s <= ceiling for s in samples)
    # Full jitter actually spreads: for a wide window the samples must
    # not collapse onto one value (the old lockstep behavior).
    spread = [transport._backoff_delay(6) for _ in range(200)]
    assert max(spread) - min(spread) > 0.2
    assert max(spread) <= 2.0  # 0.5 * 2**6 = 32s uncapped — must clamp


def test_request_retries_sleep_jittered_durations(monkeypatch):
    """The retry loop consumes ``_backoff_delay`` (not the raw
    exponential): sleeps against a dead broker stay under the cap."""
    transport = HttpTransport("http://127.0.0.1:1", retries=3,
                              retry_delay=10.0, retry_max_delay=0.25)
    slept = []
    monkeypatch.setattr("repro.campaign.dist.transport.time.sleep",
                        slept.append)
    with pytest.raises(TransportError, match="unreachable"):
        transport.get("k.json")
    assert len(slept) == 3  # one sleep per non-final attempt
    assert all(0.0 <= s <= 0.25 for s in slept)


# -- pagination --------------------------------------------------------------

def test_list_page_of_empty_prefix(transport):
    page, token = transport.list_page("nothing/", 5)
    assert page == []
    assert token is None


def test_list_page_prefix_straddling_page_boundaries(transport):
    """A prefix whose keys span several pages walks out exactly, in
    order, and never leaks neighboring prefixes into any page."""
    wanted = [f"p/{i:02d}.json" for i in range(5)]
    for key in wanted + ["o/x.json", "q/x.json"]:
        transport.put(key, b"{}")
    walked, start_after, pages = [], "", 0
    while True:
        page, token = transport.list_page("p/", 2, start_after=start_after)
        assert len(page) <= 2
        assert all(key.startswith("p/") for key in page)
        walked.extend(page)
        pages += 1
        if token is None:
            break
        start_after = token
    assert walked == wanted
    assert pages >= 3
    assert walked == sorted(walked)


def test_list_page_keys_deleted_between_pages(transport):
    """Keyset continuation: deleting keys between page fetches — behind
    the cursor or just ahead of it — never skips a surviving key."""
    for i in range(6):
        transport.put(f"p/{i}.json", b"{}")
    page1, token = transport.list_page("p/", 2)
    assert page1 == ["p/0.json", "p/1.json"]
    transport.delete("p/0.json")  # behind the cursor
    transport.delete("p/2.json")  # the key the next page would start with
    page2, token = transport.list_page("p/", 2, start_after=token)
    assert page2 == ["p/3.json", "p/4.json"]
    page3, token = transport.list_page("p/", 2, start_after=token)
    assert page3 == ["p/5.json"]
    assert token is None


def test_pagination_semantics_agree_across_transports(tmp_path):
    """Memory, filesystem and broker walk an identical keyspace into the
    identical page/token sequence — the property that lets WorkQueue and
    the cache treat the backends interchangeably."""
    keys = ([f"pending/{i:03d}-job{i}.json" for i in range(7)]
            + ["queue.json", "claims/000-job0.json"])
    stores = [MemoryTransport(), FsTransport(tmp_path / "fs-pages")]
    broker = Broker().start()
    try:
        stores.append(HttpTransport(broker.url, retries=1))
        walks = []
        for store in stores:
            for key in keys:
                store.put(key, b"{}")
            walk, start_after = [], ""
            while True:
                page, token = store.list_page("pending/", 3,
                                              start_after=start_after)
                walk.append((tuple(page), token))
                if token is None:
                    break
                start_after = token
            walks.append(walk)
        assert walks[0] == walks[1] == walks[2]
        assert [key for pages in walks[0] for key in pages[0]] == sorted(
            key for key in keys if key.startswith("pending/"))
    finally:
        broker.stop()


def test_batch_malformed_ops_fail_per_op_not_per_batch():
    """One bad op in a /batch body gets its own 400; the ops around it
    still apply — a batch is many independent conditional ops, not a
    transaction."""
    import json
    import urllib.request

    broker = Broker().start()
    try:
        body = json.dumps({"ops": [
            {"op": "put", "key": "a.json", "data": "e30="},  # {}
            {"op": "frobnicate", "key": "b.json"},
            {"op": "put", "key": "c.json", "data": "not base64!!"},
            {"op": "get", "key": "a.json"},
        ]}).encode()
        request = urllib.request.Request(
            f"{broker.url}/batch", data=body, method="POST")
        with urllib.request.urlopen(request, timeout=10.0) as response:
            payload = json.loads(response.read())
        statuses = [res["status"] for res in payload["results"]]
        assert statuses == [200, 400, 400, 200]
        transport = HttpTransport(broker.url, retries=1)
        assert transport.get("a.json")[0] == b"{}"
        assert transport.get("c.json") is None
    finally:
        broker.stop()


def test_stripe_locks_are_stable_per_prefix():
    """All keys of one top-level prefix share a stripe (mutations on one
    key always serialize), and the mapping is deterministic."""
    from repro.campaign.dist.server import StripeLocks

    locks = StripeLocks(8)
    assert len(locks) == 8
    assert (locks.for_key("pending/000-a.json")
            is locks.for_key("pending/999-z.json"))
    assert locks.for_key("queue.json") is locks.for_key("queue.json")
    distinct = {id(locks.for_key(f"{prefix}/x.json"))
                for prefix in ("jobs", "pending", "claims", "results",
                               "done", "dead", "ab", "cd")}
    assert len(distinct) > 1  # prefixes actually spread across stripes


# -- keep-alive connection reuse ---------------------------------------------

def _closing_broker() -> Broker:
    """A broker that closes the TCP connection after *every* response —
    without announcing it (no ``Connection: close`` header), so a pooled
    client discovers the close only when its next request fails.  The
    hook is ``BrokerDialect.force_close``, honored by both network
    cores."""
    broker = Broker()
    broker.dialect.force_close = True  # unannounced: client keeps pooling
    return broker


def test_idempotent_requests_survive_stale_pooled_sockets():
    """Satellite regression: with keep-alive pooling, a mid-request drop
    on a *reused* socket must not surface as a hard TransportError —
    idempotent GET/LIST (and all-get /batch probes) retry once on a
    fresh connection.  ``retries=0`` proves the reconnect is the free
    stale-socket retry, not backoff."""
    broker = _closing_broker().start()
    try:
        transport = HttpTransport(broker.url, retries=0, retry_delay=0.0)
        tag = transport.put("k.json", b"v")  # fresh socket; server closes
        for _ in range(3):  # every request now rides a stale pooled socket
            assert transport.get("k.json") == (b"v", tag)
        assert transport.list("") == ["k.json"]
        assert transport.list_page("", 10) == (["k.json"], None)
        assert transport.get_many(["k.json", "nope.json"]) == [
            (b"v", tag), None]
    finally:
        broker.stop()


def test_mutations_on_stale_sockets_use_backoff_retries_only():
    """A write whose response was lost may already have been applied, so
    re-sending it silently would misreport the outcome (a conditional
    PUT would see its own write as a conflict).  Mutations therefore get
    no free stale-socket retry — with ``retries=0`` they surface the
    drop, and with a backoff budget they go through the retry path whose
    semantics the queue already handles (own-write check in claim)."""
    broker = _closing_broker().start()
    try:
        strict = HttpTransport(broker.url, retries=0, retry_delay=0.0)
        strict.put("k.json", b"v1")  # fresh socket; server closes after
        with pytest.raises(TransportError, match="unreachable"):
            strict.put("k.json", b"v2")  # stale socket, no free retry
        retrying = HttpTransport(broker.url, retries=2, retry_delay=0.0)
        retrying.get("k.json")  # pool + stale a connection
        assert retrying.put("k.json", b"v3") == etag_of(b"v3")  # via backoff
        assert retrying.get("k.json")[0] == b"v3"
    finally:
        broker.stop()


def test_first_contact_failures_still_raise_after_retries():
    """The stale-socket retry must not mask a genuinely dead broker: a
    connection that fails on *first* use gets no free retry."""
    transport = HttpTransport("http://127.0.0.1:1", retries=0,
                              retry_delay=0.0)
    with pytest.raises(TransportError, match="unreachable"):
        transport.get("k.json")


# -- CAS conflict on simultaneous claim -------------------------------------

def test_simultaneous_claims_have_exactly_one_winner(transport):
    """N threads hammering claim() concurrently: every job is claimed by
    exactly one thread — the conditional-create CAS is the only arbiter,
    so this is the direct test of the primitive the fleet relies on."""
    jobs = _spec().expand()
    queue = WorkQueue(transport=transport, lease_seconds=30.0)
    for job in jobs:
        queue.enqueue(job)

    claimed, lock = [], threading.Lock()

    def worker(wid):
        # Each thread gets its own WorkQueue over the shared store, like
        # separate processes would.
        q = WorkQueue(transport=transport)
        while True:
            item = q.claim(f"w{wid}")
            if item is None:
                break
            with lock:
                claimed.append(item)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30.0)

    assert len(claimed) == len(jobs)
    assert len({item.key for item in claimed}) == len(jobs)
    assert queue.counts()["claimed"] == len(jobs)


def test_memory_transport_lease_expiry_requeues():
    """The in-process transport honors the full lease state machine: an
    abandoned claim expires and requeues with its attempt count bumped."""
    clock = [1000.0]
    queue = WorkQueue(transport=MemoryTransport(), lease_seconds=10.0,
                      clock=lambda: clock[0])
    job = _spec().expand()[0]
    queue.enqueue(job)
    assert queue.claim("doomed") is not None
    assert queue.requeue_expired() == []  # live lease
    clock[0] += 11.0
    assert queue.requeue_expired() == [job.job_id]
    retried = queue.claim("rescuer")
    assert retried is not None and retried.attempts == 1
    queue.complete(retried, execute_job(retried.job))
    assert queue.drained()


# -- broker lifecycle --------------------------------------------------------

def test_broker_restart_mid_lease_preserves_queue_state(tmp_path):
    """A disk-backed broker can die and come back mid-campaign: the held
    lease survives (content-derived ETags restore identically), the
    holder's heartbeat and completion still apply, and untouched tickets
    remain claimable."""
    data_dir = tmp_path / "broker-state"
    broker = Broker(data_dir=data_dir).start()
    transport = HttpTransport(broker.url, retries=3, retry_delay=0.1)
    queue = WorkQueue(transport=transport, lease_seconds=60.0)
    jobs = _spec().expand()
    queue.enqueue_grid(jobs)
    held = queue.claim("survivor")
    assert held is not None

    port = broker.port
    broker.stop()
    restarted = Broker(port=port, data_dir=data_dir).start()
    try:
        # Same URL, same state: the transport reconnects transparently.
        assert queue.counts()["claimed"] == 1
        assert queue.heartbeat(held)  # the lease etag survived the restart
        queue.complete(held, execute_job(held.job))
        rest = []
        while True:
            item = queue.claim("survivor")
            if item is None:
                break
            queue.complete(item, execute_job(item.job))
            rest.append(item.key)
        assert len(rest) == len(jobs) - 1
        assert queue.drained()
        assert queue.counts()["done"] == len(jobs)
        assert all(item.attempts == 0 for item in [held] + []), \
            "restart must not consume retry attempts"
    finally:
        restarted.stop()


def test_unreachable_broker_raises_transport_error_after_retries():
    transport = HttpTransport("http://127.0.0.1:1", retries=1,
                              retry_delay=0.01)
    with pytest.raises(TransportError, match="unreachable"):
        transport.get("queue.json")


def test_fs_transport_wraps_unwritable_locations(tmp_path):
    """An unwritable queue location is the filesystem analogue of an
    unreachable broker: it must raise TransportError, not leak OSError."""
    blocker = tmp_path / "not-a-dir"
    blocker.write_text("file, not directory", encoding="utf-8")
    with pytest.raises(TransportError, match="cannot create"):
        FsTransport(blocker / "q")


def test_worker_cli_exits_cleanly_on_unwritable_queue_dir(tmp_path, capsys):
    """The documented exit-code contract covers filesystem queues too:
    'queue directory unwritable' is exit 3 + one line, never a traceback."""
    from repro.campaign.dist import worker as worker_cli

    blocker = tmp_path / "not-a-dir"
    blocker.write_text("file, not directory", encoding="utf-8")
    code = worker_cli.main(["--queue", str(blocker / "q"), "--quiet"])
    assert code == worker_cli.EXIT_TRANSPORT_ERROR == 3
    err = capsys.readouterr().err
    assert "cannot reach queue" in err
    assert "Traceback" not in err


def test_worker_cli_exits_cleanly_on_unreachable_broker(capsys):
    """Satellite contract: a worker pointed at a dead broker exits with
    code 3 and a one-line message, not a traceback."""
    from repro.campaign.dist import worker as worker_cli

    code = worker_cli.main(["--queue", "http://127.0.0.1:1",
                            "--transport-retries", "0", "--quiet"])
    assert code == worker_cli.EXIT_TRANSPORT_ERROR == 3
    err = capsys.readouterr().err
    assert "cannot reach queue" in err
    assert "Traceback" not in err


def test_transport_from_address_dispatch(tmp_path):
    assert isinstance(transport_from_address(tmp_path / "q"), FsTransport)
    http = transport_from_address("http://example.invalid:9")
    assert isinstance(http, HttpTransport)
    assert http.address == "http://example.invalid:9"
