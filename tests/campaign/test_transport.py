"""Transport-contract and transport-edge-case tests.

The queue's pluggability claim is only real if every backend honors the
same storage contract — in particular the conditional-create CAS that all
mutual exclusion rests on — and if the backends' *specific* failure modes
(a broker restart mid-lease, a torn filesystem write, concurrent
in-process claimants) leave the queue consistent.  The contract tests run
over all three transports; the edge-case tests target the backend that
owns each failure mode.
"""

import threading

import pytest

from repro.campaign import SweepSpec
from repro.campaign.dist import (
    FsTransport,
    HttpTransport,
    MemoryTransport,
    TransportError,
    WorkQueue,
    transport_from_address,
)
from repro.campaign.dist.server import Broker
from repro.campaign.dist.transport import etag_of
from repro.campaign.jobs import execute_job


def _spec(**overrides):
    kwargs = dict(name="transport-spec", case="synthetic",
                  base={"rate": 150.0},
                  grid={"workers": [1, 2], "tasks": [4, 8]})
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


@pytest.fixture(params=["fs", "memory", "http"])
def transport(request, tmp_path):
    if request.param == "fs":
        yield FsTransport(tmp_path / "store")
    elif request.param == "memory":
        yield MemoryTransport()
    else:
        broker = Broker().start()
        try:
            yield HttpTransport(broker.url, retries=2, retry_delay=0.05)
        finally:
            broker.stop()


# -- the storage contract ---------------------------------------------------

def test_get_put_roundtrip_with_content_etag(transport):
    assert transport.get("a/x.json") is None
    tag = transport.put("a/x.json", b'{"v": 1}')
    assert tag == etag_of(b'{"v": 1}')
    assert transport.get("a/x.json") == (b'{"v": 1}', tag)


def test_conditional_create_is_exclusive(transport):
    assert transport.cas("k.json", b"first", if_match=None) is not None
    assert transport.cas("k.json", b"second", if_match=None) is None
    assert transport.get("k.json")[0] == b"first"


def test_cas_update_requires_current_etag(transport):
    tag = transport.put("k.json", b"v1")
    assert transport.cas("k.json", b"v2", if_match="stale") is None
    assert transport.get("k.json")[0] == b"v1"
    new = transport.cas("k.json", b"v2", if_match=tag)
    assert new == etag_of(b"v2")
    assert transport.get("k.json")[0] == b"v2"
    # CAS against a missing key can never succeed with a concrete etag.
    assert transport.cas("missing.json", b"x", if_match=tag) is None


def test_conditional_delete(transport):
    tag = transport.put("k.json", b"v1")
    assert not transport.delete("k.json", if_match="stale")
    assert transport.get("k.json") is not None
    assert transport.delete("k.json", if_match=tag)
    assert transport.get("k.json") is None
    assert not transport.delete("k.json")  # already gone


def test_list_is_sorted_and_prefix_scoped(transport):
    for key in ("s/b.json", "s/a.json", "t/c.json"):
        transport.put(key, b"{}")
    assert transport.list("s/") == ["s/a.json", "s/b.json"]
    assert transport.list("t/") == ["t/c.json"]
    assert transport.list("nope/") == []


def test_etags_are_content_derived_across_transports(transport):
    """Identical bytes get identical ETags on every backend — the property
    that keeps leases valid across a broker restart."""
    data = b'{"worker": "w0", "expires_at": 99.0}'
    assert transport.put("claims/x.json", data) == etag_of(data)


# -- CAS conflict on simultaneous claim -------------------------------------

def test_simultaneous_claims_have_exactly_one_winner(transport):
    """N threads hammering claim() concurrently: every job is claimed by
    exactly one thread — the conditional-create CAS is the only arbiter,
    so this is the direct test of the primitive the fleet relies on."""
    jobs = _spec().expand()
    queue = WorkQueue(transport=transport, lease_seconds=30.0)
    for job in jobs:
        queue.enqueue(job)

    claimed, lock = [], threading.Lock()

    def worker(wid):
        # Each thread gets its own WorkQueue over the shared store, like
        # separate processes would.
        q = WorkQueue(transport=transport)
        while True:
            item = q.claim(f"w{wid}")
            if item is None:
                break
            with lock:
                claimed.append(item)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30.0)

    assert len(claimed) == len(jobs)
    assert len({item.key for item in claimed}) == len(jobs)
    assert queue.counts()["claimed"] == len(jobs)


def test_memory_transport_lease_expiry_requeues():
    """The in-process transport honors the full lease state machine: an
    abandoned claim expires and requeues with its attempt count bumped."""
    clock = [1000.0]
    queue = WorkQueue(transport=MemoryTransport(), lease_seconds=10.0,
                      clock=lambda: clock[0])
    job = _spec().expand()[0]
    queue.enqueue(job)
    assert queue.claim("doomed") is not None
    assert queue.requeue_expired() == []  # live lease
    clock[0] += 11.0
    assert queue.requeue_expired() == [job.job_id]
    retried = queue.claim("rescuer")
    assert retried is not None and retried.attempts == 1
    queue.complete(retried, execute_job(retried.job))
    assert queue.drained()


# -- broker lifecycle --------------------------------------------------------

def test_broker_restart_mid_lease_preserves_queue_state(tmp_path):
    """A disk-backed broker can die and come back mid-campaign: the held
    lease survives (content-derived ETags restore identically), the
    holder's heartbeat and completion still apply, and untouched tickets
    remain claimable."""
    data_dir = tmp_path / "broker-state"
    broker = Broker(data_dir=data_dir).start()
    transport = HttpTransport(broker.url, retries=3, retry_delay=0.1)
    queue = WorkQueue(transport=transport, lease_seconds=60.0)
    jobs = _spec().expand()
    queue.enqueue_grid(jobs)
    held = queue.claim("survivor")
    assert held is not None

    port = broker.port
    broker.stop()
    restarted = Broker(port=port, data_dir=data_dir).start()
    try:
        # Same URL, same state: the transport reconnects transparently.
        assert queue.counts()["claimed"] == 1
        assert queue.heartbeat(held)  # the lease etag survived the restart
        queue.complete(held, execute_job(held.job))
        rest = []
        while True:
            item = queue.claim("survivor")
            if item is None:
                break
            queue.complete(item, execute_job(item.job))
            rest.append(item.key)
        assert len(rest) == len(jobs) - 1
        assert queue.drained()
        assert queue.counts()["done"] == len(jobs)
        assert all(item.attempts == 0 for item in [held] + []), \
            "restart must not consume retry attempts"
    finally:
        restarted.stop()


def test_unreachable_broker_raises_transport_error_after_retries():
    transport = HttpTransport("http://127.0.0.1:1", retries=1,
                              retry_delay=0.01)
    with pytest.raises(TransportError, match="unreachable"):
        transport.get("queue.json")


def test_fs_transport_wraps_unwritable_locations(tmp_path):
    """An unwritable queue location is the filesystem analogue of an
    unreachable broker: it must raise TransportError, not leak OSError."""
    blocker = tmp_path / "not-a-dir"
    blocker.write_text("file, not directory", encoding="utf-8")
    with pytest.raises(TransportError, match="cannot create"):
        FsTransport(blocker / "q")


def test_worker_cli_exits_cleanly_on_unwritable_queue_dir(tmp_path, capsys):
    """The documented exit-code contract covers filesystem queues too:
    'queue directory unwritable' is exit 3 + one line, never a traceback."""
    from repro.campaign.dist import worker as worker_cli

    blocker = tmp_path / "not-a-dir"
    blocker.write_text("file, not directory", encoding="utf-8")
    code = worker_cli.main(["--queue", str(blocker / "q"), "--quiet"])
    assert code == worker_cli.EXIT_TRANSPORT_ERROR == 3
    err = capsys.readouterr().err
    assert "cannot reach queue" in err
    assert "Traceback" not in err


def test_worker_cli_exits_cleanly_on_unreachable_broker(capsys):
    """Satellite contract: a worker pointed at a dead broker exits with
    code 3 and a one-line message, not a traceback."""
    from repro.campaign.dist import worker as worker_cli

    code = worker_cli.main(["--queue", "http://127.0.0.1:1",
                            "--transport-retries", "0", "--quiet"])
    assert code == worker_cli.EXIT_TRANSPORT_ERROR == 3
    err = capsys.readouterr().err
    assert "cannot reach queue" in err
    assert "Traceback" not in err


def test_transport_from_address_dispatch(tmp_path):
    assert isinstance(transport_from_address(tmp_path / "q"), FsTransport)
    http = transport_from_address("http://example.invalid:9")
    assert isinstance(http, HttpTransport)
    assert http.address == "http://example.invalid:9"
