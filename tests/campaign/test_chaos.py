"""Chaos and failover suite: fault injection, breakers, degraded fleets.

The robustness claim of the sharded transport stack, tested bottom-up:

* :class:`CircuitBreaker` — the three-state machine, on a fake clock
  (no sleeps, every transition asserted);
* :class:`FaultPlan` / :class:`ChaosTransport` — deterministic seeded
  fault injection: error rates, one-shot failures, partition windows,
  torn writes (applied, then reported failed);
* :class:`ShardedTransport` under chaos — breakers trip and shed,
  half-open probes reclose, reads degrade honestly (tagged partials,
  never a silent partial view), claims skip dead shards;
* the worker loop and the ``dist.stats`` dashboard riding out outages;
* the acceptance property: a 2-shard broker fleet with one shard
  partitioned mid-campaign *and* tearing its settle batches still
  completes the full grid with exactly one execution per job key and a
  serial-identical aggregate, while the flapping shard's breaker shows
  trip -> half-open -> reclose.
"""

import threading
import time

import pytest

from repro.campaign import (
    DistributedExecutor,
    MemoryTransport,
    SerialExecutor,
    SweepSpec,
    TransportResultCache,
    run_campaign,
    snapshot_campaign,
)
from repro.campaign.dist import (
    Broker,
    ChaosTransport,
    CircuitBreaker,
    DegradedResult,
    EpochMismatch,
    FaultPlan,
    HttpTransport,
    ShardedTransport,
    TransportError,
    WorkQueue,
    is_degraded,
)
from repro.campaign.dist.breaker import CLOSED, HALF_OPEN, OPEN
from repro.campaign.dist.worker import Worker, main as worker_main
from repro.campaign.jobs import execute_job, register_case
from repro.campaign.obs import MetricsRegistry, counter_total, series_value


class _Clock:
    """A hand-cranked monotonic clock for breaker / fault-plan tests."""

    def __init__(self, start: float = 0.0):
        self.t = float(start)

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def _key_on(router: ShardedTransport, index: int,
            prefix: str = "jobs/") -> str:
    """Some ``.json`` key the router maps to shard ``index``."""
    for i in range(512):
        key = f"{prefix}chaos-{i}.json"
        if router.shard_index(key) == index:
            return key
    raise AssertionError(f"no key found for shard {index}")


@register_case("chaos-nap")
def _chaos_nap(params, seed):
    """Deterministic metrics with a real (wall-clock) execution cost, so
    a chaos campaign is guaranteed to still be running when a scheduled
    partition window opens."""
    time.sleep(float(params.get("nap", 0.05)))
    return {"value": float(params.get("x", 0.0)) * (seed + 1)}


# -- CircuitBreaker state machine (fake clock, no sleeps) --------------------

def test_breaker_trips_after_threshold_consecutive_failures():
    clock = _Clock()
    breaker = CircuitBreaker(failure_threshold=3, cooldown_seconds=5.0,
                             clock=clock)
    assert breaker.state == CLOSED
    assert breaker.record_failure() == CLOSED
    assert breaker.record_failure() == CLOSED
    # A success between failures resets the consecutive count.
    assert breaker.record_success() == CLOSED
    assert breaker.failures == 0
    assert breaker.record_failure() == CLOSED
    assert breaker.record_failure() == CLOSED
    assert breaker.record_failure() == OPEN
    assert breaker.allow() is False


def test_breaker_open_sheds_until_cooldown_then_admits_one_probe():
    clock = _Clock()
    breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=5.0,
                             clock=clock)
    breaker.record_failure()
    assert breaker.state == OPEN
    clock.advance(4.9)
    assert breaker.allow() is False          # still cooling down
    clock.advance(0.2)
    assert breaker.allow() is True           # the single half-open probe
    assert breaker.state == HALF_OPEN
    assert breaker.allow() is False          # everyone else keeps shedding
    assert breaker.allow() is False
    assert breaker.record_success() == CLOSED
    assert breaker.failures == 0
    assert breaker.allow() is True


def test_breaker_failed_probe_reopens_with_a_fresh_cooldown():
    clock = _Clock()
    breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=5.0,
                             clock=clock)
    breaker.record_failure()                 # trips at t=0
    clock.advance(5.0)
    assert breaker.allow() is True           # probe admitted at t=5
    assert breaker.record_failure() == OPEN  # probe failed: reopen at t=5
    clock.advance(4.9)
    assert breaker.allow() is False          # fresh cooldown from t=5
    clock.advance(0.2)
    assert breaker.allow() is True


def test_breaker_state_property_is_side_effect_free():
    clock = _Clock()
    breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=1.0,
                             clock=clock)
    breaker.record_failure()
    clock.advance(10.0)
    # Reading state must not admit the probe on the reader's behalf.
    assert breaker.state == OPEN
    assert breaker.state == OPEN
    assert breaker.allow() is True
    assert breaker.state == HALF_OPEN


def test_breaker_threshold_clamped_to_at_least_one():
    breaker = CircuitBreaker(failure_threshold=0, cooldown_seconds=1.0,
                             clock=_Clock())
    assert breaker.failure_threshold == 1
    assert breaker.record_failure() == OPEN


# -- FaultPlan: deterministic, seeded, op-scoped -----------------------------

def test_fault_plan_is_deterministic_for_seed_and_op_sequence():
    def verdicts(seed):
        plan = FaultPlan(seed=seed).error_rate(0.3)
        return [plan.decide("get") for _ in range(100)]

    assert verdicts(7) == verdicts(7)
    assert verdicts(7) != verdicts(8)
    assert "error" in verdicts(7)            # 0.3 over 100 draws
    assert None in verdicts(7)


def test_fault_plan_rates_are_op_scoped_and_clamped():
    plan = FaultPlan(seed=0).error_rate(5.0, "put")  # clamped to 1.0
    for _ in range(20):
        assert plan.decide("put", mutating=True) == "error"
        assert plan.decide("get") is None


def test_fault_plan_fail_next_is_one_shot_and_op_scoped():
    plan = FaultPlan(seed=0).fail_next(2, "put").fail_next(1)
    assert plan.decide("put", mutating=True) == "error"   # put #1
    assert plan.decide("put", mutating=True) == "error"   # put #2
    assert plan.decide("get") == "error"                  # the "*" one
    assert plan.decide("put", mutating=True) is None
    assert plan.decide("get") is None


def test_fault_plan_partition_windows_stack_on_an_injectable_clock():
    clock = _Clock()
    plan = (FaultPlan(seed=0, clock=clock)
            .fail_between(1.0, 2.0)
            .fail_between(5.0, 6.0))
    assert plan.decide("get") is None
    clock.t = 1.5
    assert plan.partitioned()
    assert plan.decide("get") == "error"
    assert plan.decide("put", mutating=True) == "error"
    clock.t = 3.0
    assert plan.decide("get") is None
    clock.t = 5.0                            # second window, inclusive start
    assert plan.decide("get") == "error"
    clock.t = 6.0                            # exclusive stop
    assert plan.decide("get") is None


def test_fault_plan_torn_verdicts_only_for_mutating_ops():
    plan = FaultPlan(seed=0).torn_writes(1.0)
    for _ in range(10):
        assert plan.decide("put", mutating=True) == "torn"
        assert plan.decide("get", mutating=False) is None


# -- ChaosTransport: the injector itself -------------------------------------

def test_chaos_transport_is_transparent_without_faults():
    inner = MemoryTransport()
    chaos = ChaosTransport(inner, FaultPlan(seed=0))
    tag = chaos.put("jobs/a.json", b"{}")
    assert chaos.get("jobs/a.json") == (b"{}", tag)
    assert chaos.list("jobs/") == ["jobs/a.json"]
    assert chaos.list_page("jobs/", 10) == (["jobs/a.json"], None)
    assert chaos.get_many(["jobs/a.json", "jobs/nope.json"]) == [
        (b"{}", tag), None]
    assert chaos.cas("jobs/a.json", b"[]", if_match=tag) is not None
    assert chaos.delete("jobs/a.json") is True
    # Chaos lives in-process: never advertise the inner store's address.
    assert chaos.address is None


def test_chaos_transport_mirrors_optional_capabilities():
    # MemoryTransport has no server-side claim: the wrapper must not
    # invent one, or the sharded router would trust a phantom endpoint.
    plain = ChaosTransport(MemoryTransport(), FaultPlan())
    assert plain.claim_first is None
    # HttpTransport has claim_first and stats (construction is offline).
    http = ChaosTransport(
        HttpTransport("http://chaos.invalid:1", retries=0), FaultPlan())
    assert callable(http.claim_first)
    assert callable(http.stats)


def test_chaos_error_faults_raise_before_touching_the_store():
    inner = MemoryTransport()
    registry = MetricsRegistry()
    chaos = ChaosTransport(inner, FaultPlan(seed=0).fail_next(1, "put"),
                           registry=registry)
    with pytest.raises(TransportError, match="chaos: injected put fault"):
        chaos.put("jobs/a.json", b"{}")
    assert inner.get("jobs/a.json") is None          # never applied
    assert chaos.put("jobs/a.json", b"{}")           # one-shot spent
    snapshot = registry.snapshot()
    assert series_value(snapshot, "counters", "chaos_faults_total",
                        op="put", kind="error") == 1.0


def test_chaos_torn_write_applies_then_reports_failure():
    inner = MemoryTransport()
    registry = MetricsRegistry()
    chaos = ChaosTransport(inner, FaultPlan(seed=0).torn_writes(1.0, "put"),
                           registry=registry)
    with pytest.raises(TransportError, match="torn put"):
        chaos.put("jobs/a.json", b"{}")
    # The nastiest failure mode: the write landed, the caller was lied to.
    assert inner.get("jobs/a.json") is not None
    snapshot = registry.snapshot()
    assert series_value(snapshot, "counters", "chaos_faults_total",
                        op="put", kind="torn") == 1.0


def test_chaos_added_latency_delays_the_op():
    chaos = ChaosTransport(MemoryTransport(),
                           FaultPlan(seed=0).add_latency(0.05, "get"))
    chaos.put("jobs/a.json", b"{}")          # puts not slowed
    start = time.perf_counter()
    chaos.get("jobs/a.json")
    assert time.perf_counter() - start >= 0.04


def test_chaos_queue_roundtrip_without_faults():
    """A fault-free ChaosTransport is protocol-complete: the queue's full
    enqueue / claim / complete cycle runs through it unchanged."""
    queue = WorkQueue(transport=ChaosTransport(MemoryTransport(),
                                               FaultPlan(seed=0)))
    spec = SweepSpec(name="chaos-rt", case="synthetic", base={"rate": 140.0},
                     grid={"tasks": [5, 9]})
    queue.enqueue_grid(spec.expand())
    settled = 0
    while True:
        item = queue.claim("w0")
        if item is None:
            break
        queue.complete(item, execute_job(item.job))
        settled += 1
    assert settled == 2
    assert queue.drained()


# -- ShardedTransport under chaos: breakers ----------------------------------

def _chaotic_pair(plan, clock, breaker_failures=2, cooldown=5.0,
                  degraded_reads=False, registry=None):
    """A 2-shard router whose shard 1 is behind a ChaosTransport."""
    inner = MemoryTransport()
    shards = [MemoryTransport(), ChaosTransport(inner, plan)]
    router = ShardedTransport(shards, breaker_failures=breaker_failures,
                              breaker_cooldown=cooldown,
                              breaker_clock=clock,
                              degraded_reads=degraded_reads,
                              registry=registry)
    return router, inner


def test_sharded_breaker_trips_sheds_and_recloses_after_probe():
    clock = _Clock()
    plan = FaultPlan(seed=0).error_rate(1.0)
    registry = MetricsRegistry()
    router, inner = _chaotic_pair(plan, clock, breaker_failures=2,
                                  registry=registry)
    key = _key_on(router, 1)
    for _ in range(2):
        with pytest.raises(TransportError, match="chaos: injected"):
            router.put(key, b"{}")
    assert router.breakers[1].state == OPEN
    assert ("shard-1", "closed", "open") in list(router.breaker_events)
    # Open circuit: the op is shed instantly, naming the shard, without
    # the injector (or any network) being touched.
    with pytest.raises(TransportError,
                       match="shard shard-1 circuit is open"):
        router.put(key, b"{}")
    snapshot = registry.snapshot()
    assert series_value(snapshot, "counters", "shard_ops_shed_total",
                        op="put", shard="shard-1") == 1.0
    assert series_value(snapshot, "gauges", "shard_breaker_state",
                        shard="shard-1") == 2.0

    # Heal the shard, crank past the cooldown: the next admitted op is
    # the half-open probe, and its success recloses the breaker.
    plan.error_rate(0.0)
    clock.advance(5.5)
    assert router.put(key, b"{}")
    assert router.breakers[1].state == CLOSED
    events = [event for event in router.breaker_events
              if event[0] == "shard-1"]
    assert events == [("shard-1", "closed", "open"),
                      ("shard-1", "open", "half-open"),
                      ("shard-1", "half-open", "closed")]
    assert series_value(registry.snapshot(), "gauges",
                        "shard_breaker_state", shard="shard-1") == 0.0
    # The healed shard actually holds the write (epoch stamp included).
    assert inner.get(key) is not None


def test_sharded_breaker_healthy_shard_unaffected_by_dead_sibling():
    """Ops routed to the healthy shard keep working while the dead
    sibling's breaker counts failures — the epoch sweep tolerates an
    unreachable shard instead of poisoning the fleet."""
    clock = _Clock()
    plan = FaultPlan(seed=0).error_rate(1.0)
    router, _ = _chaotic_pair(plan, clock, breaker_failures=1)
    healthy_key = _key_on(router, 0)
    assert router.put(healthy_key, b"{}")    # sweeps the fleet, succeeds
    assert router.get(healthy_key) is not None
    assert router.breakers[0].state == CLOSED
    # The sweep's failed stamp of shard 1 was breaker-counted, not raised.
    assert router.breakers[1].failures >= 1
    assert router.shards_reporting() == (1, 2)
    assert router.degraded_shards() == ["shard-1"]


def test_sharded_epoch_mismatch_is_config_error_never_breaker_counted():
    """Satellite: 'shard unreachable' (retryable, breaker territory) vs
    'epoch mismatch' (config error, fail fast) are distinct failures."""
    shards = [MemoryTransport(), MemoryTransport()]
    ShardedTransport(shards).put("jobs/a.json", b"{}")   # stamp 2-fleet
    grown = ShardedTransport(shards + [MemoryTransport()])
    assert issubclass(EpochMismatch, TransportError)
    for _ in range(8):                       # never shed, never retried away
        with pytest.raises(EpochMismatch, match="different fleet epoch"):
            grown.get("jobs/a.json")
    assert all(breaker.state == CLOSED for breaker in grown.breakers)
    assert all(breaker.failures == 0 for breaker in grown.breakers)
    assert grown.shards_reporting() == (3, 3)


# -- ShardedTransport under chaos: degraded reads ----------------------------

def test_sharded_degraded_reads_tag_partials_strict_reads_raise():
    clock = _Clock()
    plan = FaultPlan(seed=0)
    router, _ = _chaotic_pair(plan, clock, degraded_reads=True)
    keys = sorted(f"p/{i:03d}.json" for i in range(16))
    for key in keys:
        router.put(key, b"{}")
    shard0_keys = [key for key in keys if router.shard_index(key) == 0]
    assert shard0_keys and len(shard0_keys) < len(keys)

    plan.error_rate(1.0)
    listing = router.list("p/")
    assert is_degraded(listing)
    assert listing.missing_shards == ["shard-1"]
    assert list(listing) == shard0_keys      # the reachable merge, honest
    page, _ = router.list_page("p/", 100)
    assert is_degraded(page)
    got = router.get_many(keys)
    assert is_degraded(got)
    assert [keys[i] for i, item in enumerate(got)
            if item is not None] == shard0_keys

    # Strict mode (the default) refuses the partial view outright.
    strict, _ = _chaotic_pair(FaultPlan(seed=0).error_rate(1.0), _Clock())
    strict.put(_key_on(strict, 0), b"{}")
    with pytest.raises(TransportError):
        strict.list("p/")


def test_sharded_degraded_reads_raise_when_every_shard_is_down():
    plan = FaultPlan(seed=0).error_rate(1.0)
    inner0, inner1 = MemoryTransport(), MemoryTransport()
    router = ShardedTransport(
        [ChaosTransport(inner0, plan), ChaosTransport(inner1, plan)],
        degraded_reads=True, breaker_failures=100)
    with pytest.raises(TransportError, match="shards unreachable"):
        router.list("p/")


def test_degraded_breaker_queue_refuses_to_report_drained():
    """A fleet with an unreadable shard must never look drained: reporting
    empty from a partial listing is how results get lost."""
    clock = _Clock()
    plan = FaultPlan(seed=0)
    router, _ = _chaotic_pair(plan, clock, degraded_reads=True)
    queue = WorkQueue(transport=router)
    # Park pending tickets on shard 1 only, then partition it.
    name = None
    for i in range(512):
        candidate = f"0000000001-t{i}"
        if router.shard_index(f"pending/{candidate}.json") == 1:
            name = candidate
            break
    router.put(f"pending/{name}.json", b'{"attempts": 0}')
    assert not queue.drained()               # honest while healthy too
    plan.error_rate(1.0)
    assert not queue.drained()               # degraded: cannot prove empty
    plan.error_rate(0.0)
    router.delete(f"pending/{name}.json")
    assert queue.drained()


def test_snapshot_campaign_reports_shards_under_breaker_degradation():
    spec = SweepSpec(name="chaos-snap", case="synthetic",
                     base={"rate": 140.0}, grid={"tasks": [5, 9, 17]})
    clock = _Clock()
    plan = FaultPlan(seed=0)
    router, _ = _chaotic_pair(plan, clock, breaker_failures=1,
                              degraded_reads=True)
    queue = WorkQueue(transport=router)
    queue.enqueue_grid(spec.expand())
    item = queue.claim("w0")
    queue.complete(item, execute_job(item.job))

    healthy = snapshot_campaign(spec, queue)
    assert healthy.shards_reporting == (2, 2)
    assert "shards reporting" not in healthy.summary()

    plan.error_rate(1.0)
    with pytest.raises(TransportError):      # trip shard 1's breaker
        router.put(_key_on(router, 1), b"{}")
    degraded = snapshot_campaign(spec, queue)
    assert degraded.shards_reporting == (1, 2)
    assert "[1 of 2 shards reporting]" in degraded.summary()
    assert degraded.result.meta["incremental"]["shards_reporting"] == [1, 2]


# -- degraded claims: the fleet keeps serving --------------------------------

def test_sharded_breaker_claims_skip_dead_shard_then_recover(tmp_path):
    """With one shard's circuit open, ``claim_first`` serves the healthy
    ring (longest-available-first); the dead shard's tickets stay safe on
    its store and flow again after the breaker's half-open probe."""
    spec = SweepSpec(name="chaos-claims", case="synthetic",
                     base={"rate": 140.0},
                     grid={"workers": [1, 2], "tasks": [5, 9, 17]})
    jobs = spec.expand()
    clock = _Clock()
    plan = FaultPlan(seed=0)
    brokers = [Broker().start(), Broker().start()]
    try:
        shard0 = HttpTransport(brokers[0].url, retries=1, retry_delay=0.05)
        shard1 = ChaosTransport(
            HttpTransport(brokers[1].url, retries=1, retry_delay=0.05),
            plan)
        router = ShardedTransport([shard0, shard1], breaker_failures=1,
                                  breaker_cooldown=5.0, breaker_clock=clock)
        queue = WorkQueue(transport=router, lease_seconds=30.0)
        queue.enqueue_grid(jobs)
        on_shard1 = {job.job_id for job in jobs
                     if router.shard_index(f"jobs/{job.job_id}.json") == 1}
        assert on_shard1 and len(on_shard1) < len(jobs)  # both shards loaded

        plan.error_rate(1.0)                 # partition shard 1
        claimed = []
        while True:
            item = queue.claim("w0")
            if item is None:
                break
            claimed.append(item.job.job_id)
            queue.complete(item, execute_job(item.job))
        # Every healthy-shard job was served; the dead shard's tickets
        # are still parked on its own store, not lost.
        assert set(claimed) == {job.job_id for job in jobs
                                if job.job_id not in on_shard1}
        assert router.breakers[1].state == OPEN
        assert len(shard1.inner.list("pending/")) == len(on_shard1)

        plan.error_rate(0.0)                 # heal, then pass the cooldown
        clock.advance(5.5)
        while True:
            item = queue.claim("w0")
            if item is None:
                break
            claimed.append(item.job.job_id)
            queue.complete(item, execute_job(item.job))
        assert set(claimed) == {job.job_id for job in jobs}
        assert queue.drained()
        assert router.breakers[1].state == CLOSED
        router.close()
    finally:
        for broker in brokers:
            broker.stop()


# -- worker loop outage tolerance --------------------------------------------

def test_worker_chaos_survives_transient_transport_errors():
    store = MemoryTransport()
    WorkQueue(transport=store).enqueue_grid(
        SweepSpec(name="chaos-worker", case="synthetic",
                  base={"rate": 140.0}, grid={"tasks": [5, 9]}).expand())
    plan = FaultPlan(seed=0)
    queue = WorkQueue(transport=ChaosTransport(store, plan))
    plan.fail_next(3)                        # three dropped requests
    worker = Worker(queue, worker_id="chaos-w", poll_interval=0.01,
                    exit_when_drained=True, max_outage=10.0)
    assert worker.run() == 2
    assert queue.drained()


def test_worker_chaos_zero_outage_budget_fails_fast():
    plan = FaultPlan(seed=0)
    queue = WorkQueue(transport=ChaosTransport(MemoryTransport(), plan))
    plan.fail_next(1)
    worker = Worker(queue, poll_interval=0.01, exit_when_drained=True,
                    max_outage=0.0)
    with pytest.raises(TransportError):
        worker.run()


def test_worker_chaos_sustained_outage_exhausts_the_budget():
    plan = FaultPlan(seed=0)
    queue = WorkQueue(transport=ChaosTransport(MemoryTransport(), plan))
    plan.error_rate(1.0)                     # never heals
    worker = Worker(queue, poll_interval=0.01, exit_when_drained=True,
                    max_outage=0.3)
    start = time.monotonic()
    with pytest.raises(TransportError):
        worker.run()
    assert time.monotonic() - start >= 0.3   # it did retry for the budget


def test_worker_cli_chaos_survives_broker_dropping_requests():
    """Regression (the pre-breaker behavior): a broker dropping requests
    mid-loop used to surface as exit code 3 on the first error.  With
    ``force_close`` the broker tears down *every* connection after one
    reply, and ``--transport-retries 0`` surfaces each drop to the loop —
    the worker must still drain the grid and exit 0."""
    spec = SweepSpec(name="chaos-cli", case="synthetic",
                     base={"rate": 140.0}, grid={"tasks": [5, 9, 17]})
    broker = Broker().start()
    try:
        queue = WorkQueue(
            transport=HttpTransport(broker.url, retries=2, retry_delay=0.05))
        queue.enqueue_grid(spec.expand())
        broker.dialect.force_close = True
        rc = worker_main(["--queue", broker.url, "--worker-id", "chaos-w0",
                          "--transport-retries", "0",
                          "--max-outage", "30", "--poll-interval", "0.02",
                          "--exit-when-drained", "--quiet"])
        broker.dialect.force_close = False
        assert rc == 0
        counts = queue.counts()
        assert counts["done"] == 3 and counts["pending"] == 0
    finally:
        broker.stop()


def test_worker_cli_chaos_zero_budget_still_exits_3():
    """The fail-fast contract survives: with ``--max-outage 0`` the first
    mid-loop transport error is still exit code 3."""
    spec = SweepSpec(name="chaos-cli-3", case="synthetic",
                     base={"rate": 140.0}, grid={"tasks": [5]})
    broker = Broker().start()
    try:
        queue = WorkQueue(
            transport=HttpTransport(broker.url, retries=2, retry_delay=0.05))
        queue.enqueue_grid(spec.expand())
        broker.dialect.force_close = True
        rc = worker_main(["--queue", broker.url,
                          "--transport-retries", "0", "--max-outage", "0",
                          "--poll-interval", "0.02",
                          "--exit-when-drained", "--quiet"])
        broker.dialect.force_close = False
        assert rc == 3
    finally:
        broker.stop()


# -- dist.stats on a degraded fleet ------------------------------------------

def _dead_url():
    import socket

    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return f"http://127.0.0.1:{port}"


def test_stats_cli_chaos_renders_down_shard_and_keeps_aggregating(capsys):
    from repro.campaign.dist.stats import main as stats_main

    broker = Broker().start()
    try:
        transport = HttpTransport(broker.url)
        WorkQueue(transport=transport).enqueue_grid(
            SweepSpec(name="chaos-stats", case="synthetic",
                      base={"rate": 140.0}, grid={"tasks": [5, 9, 17]}
                      ).expand())
        transport.close()
        fleet = f"{broker.url},{_dead_url()}"
        assert stats_main([fleet]) == 0      # a degraded fleet is not rc 3
        lines = capsys.readouterr().out.strip().splitlines()
        assert "1/2 shards" in lines[0]
        assert "pending 3" in lines[0]       # the live shard still counted
        assert lines[1].strip().startswith(f"shard {broker.url}")
        assert "DOWN" in lines[2]
    finally:
        broker.stop()


def test_stats_cli_chaos_exits_3_only_when_no_shard_answers(capsys):
    from repro.campaign.dist.stats import main as stats_main

    assert stats_main([f"{_dead_url()},{_dead_url()}"]) == 3
    assert "no shard answered" in capsys.readouterr().err


# -- orchestrator riding out a window ----------------------------------------

def test_executor_chaos_drain_poll_rides_out_a_partition_window():
    """The orchestrator's drain loop keeps polling through a transport
    outage instead of dying on the first failed listing."""
    spec = SweepSpec(name="chaos-drain", case="chaos-nap",
                     base={"nap": 0.05}, grid={"x": [1, 2, 3, 4, 5, 6]})
    serial = run_campaign(spec, executor=SerialExecutor())
    start = time.monotonic()
    plan = FaultPlan(seed=3).fail_between(start + 0.1, start + 0.5)
    executor = DistributedExecutor(
        transport=ChaosTransport(MemoryTransport(), plan),
        workers=2, lease_seconds=10.0, poll_interval=0.02, timeout=120.0)
    distributed = run_campaign(spec, executor=executor)
    assert distributed.ok, distributed.failures
    assert (serial.aggregate_fingerprint()
            == distributed.aggregate_fingerprint())


# -- the acceptance property -------------------------------------------------

def test_chaos_partitioned_shard_fleet_completes_grid_exactly_once(
        monkeypatch):
    """The headline chaos acceptance: a 2-broker sharded fleet where one
    shard disappears behind a partition window mid-campaign *and* tears
    half its settle batches (applied, then reported failed).  The fleet
    must still complete the full grid with exactly one execution per job
    key and a serial-identical aggregate, no job lost or dead-lettered —
    and the flapping shard's breaker must show the full trip ->
    half-open -> reclose lifecycle.  Runs on whichever broker core
    ``REPRO_BROKER_CORE`` selects (CI runs both)."""
    from repro.campaign.dist import worker as worker_mod

    spec = SweepSpec(name="chaos-acceptance", case="chaos-nap",
                     base={"nap": 0.1},
                     grid={"x": [float(i) for i in range(12)]})
    jobs = spec.expand()
    serial = run_campaign(spec, executor=SerialExecutor())

    lock = threading.Lock()
    executions = {}
    real_execute = worker_mod.execute_job

    def counting_execute(job):
        with lock:
            executions[job.job_id] = executions.get(job.job_id, 0) + 1
        return real_execute(job)

    monkeypatch.setattr(worker_mod, "execute_job", counting_execute)

    brokers = [Broker().start(), Broker().start()]
    chaos_registry = MetricsRegistry()
    try:
        start = time.monotonic()
        plan = (FaultPlan(seed=17)
                .fail_between(start + 0.3, start + 1.5)
                .torn_writes(0.5, "mutate_many"))
        shard0 = HttpTransport(brokers[0].url, retries=2, retry_delay=0.05)
        shard1 = ChaosTransport(
            HttpTransport(brokers[1].url, retries=2, retry_delay=0.05),
            plan, registry=chaos_registry)
        router = ShardedTransport([shard0, shard1], breaker_failures=3,
                                  breaker_cooldown=0.3)
        # The chaos wrapper is address-less by design, so the executor
        # spawns a *thread* fleet sharing this very router (a spawned
        # process would be handed the inner URL and bypass the chaos).
        assert router.address is None
        cache = TransportResultCache(MemoryTransport())  # un-chaos'd dedup
        executor = DistributedExecutor(
            transport=router, workers=2, cache=cache,
            lease_seconds=10.0, poll_interval=0.02, timeout=120.0)
        distributed = run_campaign(spec, executor=executor, cache=cache)

        assert distributed.ok, distributed.failures
        assert len(distributed) == 12
        assert (serial.aggregate_fingerprint()
                == distributed.aggregate_fingerprint())
        assert serial.rows() == distributed.rows()
        # Exactly-once: the census, not just the settled records.
        assert executions == {job.job_id: 1 for job in jobs}

        queue = executor.last_queue
        counts = queue.counts()
        assert counts["done"] == 12 and counts["dead"] == 0
        assert len(queue.result_records()) == 12
        # Both shards carried real traffic.
        for broker in brokers:
            shard = HttpTransport(broker.url)
            assert shard.list("done/"), f"no settled work on {broker.url}"
            shard.close()
        # The window really injected faults through the wrapper.
        assert counter_total(chaos_registry.snapshot(),
                             "chaos_faults_total") > 0

        # Breaker lifecycle: the campaign tripped the flapping shard; if
        # it drained before the probe fired, drive recovery explicitly.
        probe_key = _key_on(router, 1)
        deadline = time.monotonic() + 10.0
        while (("shard-1", "half-open", "closed")
               not in list(router.breaker_events)):
            assert time.monotonic() < deadline, list(router.breaker_events)
            try:
                router.get(probe_key)
            except TransportError:
                pass
            time.sleep(0.05)
        events = [event for event in router.breaker_events
                  if event[0] == "shard-1"]
        assert ("shard-1", "closed", "open") in events       # trip
        assert ("shard-1", "open", "half-open") in events    # probe
        assert events.index(("shard-1", "closed", "open")) < events.index(
            ("shard-1", "half-open", "closed"))              # ... reclose
        router.close()
    finally:
        for broker in brokers:
            broker.stop()
