"""Unit tests for sweep-spec expansion and job identity."""

import pytest

from repro.campaign import SpecError, SweepSpec
from repro.campaign.spec import JobSpec


def _spec(**overrides):
    kwargs = dict(name="s", case="synthetic",
                  base={"rate": 100.0},
                  grid={"workers": [1, 2], "tasks": [5, 10, 20]})
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


def test_expansion_covers_full_cartesian_product():
    jobs = _spec().expand()
    assert len(jobs) == 6
    combos = {(job.params["workers"], job.params["tasks"]) for job in jobs}
    assert combos == {(w, t) for w in (1, 2) for t in (5, 10, 20)}
    # Base parameters are merged into every job.
    assert all(job.params["rate"] == 100.0 for job in jobs)


def test_expansion_is_deterministic_and_ordered():
    first = _spec().expand()
    second = _spec().expand()
    assert [job.job_id for job in first] == [job.job_id for job in second]
    assert [job.index for job in first] == list(range(6))
    # Axes iterate in sorted-name order ("tasks" before "workers"), so the
    # later-sorted axis varies fastest.
    assert [job.params["tasks"] for job in first] == [5, 5, 10, 10, 20, 20]
    assert [job.params["workers"] for job in first] == [1, 2] * 3


def test_job_identity_is_content_derived_not_positional():
    forward = _spec().expand()
    reordered = _spec(grid={"workers": [2, 1], "tasks": [20, 10, 5]}).expand()
    assert {job.fingerprint for job in forward} == \
        {job.fingerprint for job in reordered}
    assert {(job.fingerprint, job.seed) for job in forward} == \
        {(job.fingerprint, job.seed) for job in reordered}


def test_per_job_seeds_are_distinct_and_stable():
    jobs = _spec().expand()
    seeds = [job.seed for job in jobs]
    assert len(set(seeds)) == len(seeds)
    assert seeds == [job.seed for job in _spec().expand()]
    # A different sweep seed re-seeds every job.
    other = _spec(seed=999).expand()
    assert all(a.seed != b.seed for a, b in zip(jobs, other))


def test_shared_seed_mode_fixes_physics_across_the_grid():
    """The paper's fixed-workload protocol: differential grids (overhead,
    speedup, staging gain) compare runs that differ only in the swept
    parameter, so every job gets the sweep seed verbatim."""
    jobs = _spec(seed_mode="shared", seed=77).expand()
    assert {job.seed for job in jobs} == {77}
    # Repeats still get distinct (but per-repeat-constant) seeds.
    repeated = _spec(seed_mode="shared", seed=77, repeats=2).expand()
    first, second = repeated[:6], repeated[6:]
    assert len({job.seed for job in first}) == 1
    assert len({job.seed for job in second}) == 1
    assert first[0].seed != second[0].seed
    # And the mode is part of the sweep identity.
    assert _spec(seed_mode="shared").fingerprint() != _spec().fingerprint()
    with pytest.raises(SpecError, match="seed_mode"):
        _spec(seed_mode="bogus")


def test_repeats_replicate_grid_with_fresh_seeds():
    spec = _spec(repeats=2)
    jobs = spec.expand()
    assert len(jobs) == 12
    assert spec.job_count == 12
    first, second = jobs[:6], jobs[6:]
    assert [j.params for j in first] == [j.params for j in second]
    assert all(a.seed != b.seed for a, b in zip(first, second))


def test_empty_grid_yields_single_job():
    spec = SweepSpec(name="one", case="synthetic", base={"tasks": 3}, grid={})
    jobs = spec.expand()
    assert len(jobs) == 1
    assert jobs[0].params == {"tasks": 3}


def test_base_grid_collision_rejected():
    with pytest.raises(SpecError, match="both base and grid"):
        _spec(base={"workers": 1}, grid={"workers": [1, 2]})


def test_non_scalar_parameters_rejected():
    with pytest.raises(SpecError, match="JSON scalar"):
        _spec(base={"rate": [1, 2]})
    with pytest.raises(SpecError, match="JSON scalar"):
        _spec(grid={"workers": [object()]})


def test_empty_axis_and_bad_axis_type_rejected():
    with pytest.raises(SpecError, match="is empty"):
        _spec(grid={"workers": []})
    with pytest.raises(SpecError, match="list/tuple/range"):
        _spec(grid={"workers": "12"})


def test_spec_fingerprint_tracks_content():
    a, b = _spec(), _spec()
    assert a.fingerprint() == b.fingerprint()
    assert a.fingerprint() != _spec(seed=999).fingerprint()
    assert a.fingerprint() != _spec(grid={"workers": [1, 2],
                                          "tasks": [5, 10]}).fingerprint()


def test_jobspec_record_round_trip():
    job = _spec().expand()[3]
    clone = JobSpec.from_record(job.to_record())
    assert clone == job
    assert clone.fingerprint == job.fingerprint
    assert clone.job_id == job.job_id
