"""Acceptance tests of the distributed campaign subsystem.

The headline property: a real-workload grid run through
``DistributedExecutor`` with a worker fleet — *including a worker that
crashes mid-job* — yields aggregates bit-identical to ``SerialExecutor``,
and it does so over every queue transport: the shared-filesystem
directory, the in-process memory store (thread fleets) and the HTTP
broker.  The parametrized crash suite is the proof that the transport
seam is real — the queue state machine cannot tell the backends apart.

The 12-job grid sweeps the platform itself (OST counts × page-cache sizes
× device bandwidths): every job drives concurrent readers through the full
POSIX/VFS/page-cache/Lustre simulation stack — the paper's Kebnekaise
storage model — while staying milliseconds-scale, so the fleet tests keep
tier-1 fast.
"""

import threading

import pytest

from repro.campaign import (
    AutoscalePolicy,
    DistributedExecutor,
    MemoryTransport,
    ResultCache,
    SerialExecutor,
    SweepSpec,
    TransportResultCache,
    open_cache,
    run_campaign,
    snapshot_campaign,
)
from repro.campaign.dist import (
    Broker,
    CostModel,
    WorkQueue,
    transport_from_address,
)
from repro.campaign.jobs import execute_job
from repro.workloads import platform_grid_spec

#: 3 x 2 x 2 = 12 real-simulation jobs (full storage/OS stack per job).
PLATFORM_SPEC = platform_grid_spec(
    osts=(1, 2, 8),
    page_cache_gib=(0.03125, 8.0),
    bandwidth_scales=(0.5, 2.0),
    files=8, file_kib=8192, readers=4,
    seed=13,
)


def _synthetic_spec(**overrides):
    kwargs = dict(name="dist-synth", case="synthetic", base={"rate": 140.0},
                  grid={"workers": [1, 2], "tasks": [5, 9, 17, 33]})
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


@pytest.fixture(scope="module")
def platform_serial():
    """One serial run of the platform grid, shared by every transport leg."""
    result = run_campaign(PLATFORM_SPEC, executor=SerialExecutor())
    assert result.ok, result.failures
    return result


@pytest.fixture(params=["fs", "memory", "http"])
def crash_fleet(request, tmp_path):
    """Executor kwargs for a 2-worker fleet whose worker #1 crashes after
    its second claim, per transport: process fleets hard-exit
    (``os._exit`` via the worker CLI), the in-process thread fleet
    abandons its claim (``WorkerCrash``) — both leave a dangling lease."""
    if request.param == "fs":
        yield dict(queue_dir=tmp_path / "queue",
                   worker_extra_args=[(), ("--crash-after-claims", "2")])
    elif request.param == "memory":
        yield dict(transport=MemoryTransport(),
                   worker_options=[{}, {"crash_after_claims": 2,
                                        "crash_mode": "abandon"}])
    else:
        broker = Broker(data_dir=tmp_path / "broker").start()
        try:
            yield dict(transport=broker.url,
                       worker_extra_args=[(), ("--crash-after-claims", "2")])
        finally:
            broker.stop()


# -- the acceptance property -----------------------------------------------

def test_distributed_fleet_with_worker_crash_matches_serial(crash_fleet,
                                                            platform_serial):
    """12 real-workload jobs, 2 workers, one injected crash mid-job: the
    lease expires, the job requeues, the surviving worker finishes the
    grid, and the aggregate equals the serial run exactly — identically
    over the filesystem, memory and HTTP transports."""
    assert PLATFORM_SPEC.job_count == 12
    executor = DistributedExecutor(
        workers=2,
        lease_seconds=1.0,      # short lease => fast crash recovery
        poll_interval=0.05,
        timeout=300.0,
        **crash_fleet,
    )
    distributed = run_campaign(PLATFORM_SPEC, executor=executor)

    assert distributed.ok, distributed.failures
    assert len(distributed) == 12
    assert distributed.executor == "distributed"
    assert (platform_serial.aggregate_fingerprint()
            == distributed.aggregate_fingerprint())
    assert platform_serial.rows() == distributed.rows()

    queue = executor.last_queue
    assert queue is not None
    counts = queue.counts()
    assert counts["done"] == 12
    assert counts["dead"] == 0
    # Prove the crash + recovery actually happened: the raw result records
    # carry the settling attempt number, so the job the crashed worker was
    # holding must have completed on attempt >= 2, by a different worker.
    records = list(queue.result_records().values())
    attempts = [record["attempts"] for record in records]
    assert max(attempts) >= 2, attempts
    crashed = [r for r in records if r["attempts"] >= 2]
    assert all(not r["worker"].startswith("w1-") for r in crashed)


def test_broker_fleet_dedups_through_broker_cache_under_crash(platform_serial):
    """The no-shared-filesystem story, end to end: worker *processes*
    reach both the queue and the result cache purely through one broker
    URL (``--queue http://B --cache http://B``), the broker's store is
    in-memory — there is no shared directory anywhere — and with a worker
    crashing mid-grid the fleet still executes each job key at most once
    and reproduces the serial aggregate bit-for-bit.  A second fleet over
    a wiped queue then serves *every* job from the broker cache: the
    dedup layer, not the queue, is what remembered the work."""
    broker = Broker().start()  # memory-backed: nothing touches a disk
    try:
        cache = open_cache(broker.url)
        executor = DistributedExecutor(
            workers=2, transport=broker.url, cache=cache,
            lease_seconds=1.0, poll_interval=0.05, timeout=300.0,
            worker_extra_args=[(), ("--crash-after-claims", "2")])
        distributed = run_campaign(PLATFORM_SPEC, executor=executor,
                                   cache=cache)
        assert distributed.ok, distributed.failures
        assert (platform_serial.aggregate_fingerprint()
                == distributed.aggregate_fingerprint())

        records = executor.last_queue.result_records()
        assert len(records) == 12
        # ≤1 execution per job key: every settled record is a fresh
        # execution and there is exactly one record per key — the crashed
        # claim was re-run by the survivor (attempts >= 2), not doubled.
        assert all(not record["cached"] for record in records.values())
        assert max(record["attempts"] for record in records.values()) >= 2
        assert len(cache) == 12

        # Phase 2: erase the queue's memory of the campaign, keep the
        # cache, and drain the same grid with a fresh fleet.  Every job
        # must come back cache-served through the broker — no shared
        # filesystem ever existed for the workers to dedup through.
        transport = executor.last_queue.transport
        for prefix in ("jobs/", "pending/", "claims/", "results/",
                       "done/", "dead/", "queue"):
            for key in transport.list(prefix):
                transport.delete(key)
        executor2 = DistributedExecutor(
            workers=2, transport=broker.url, cache=cache,
            lease_seconds=5.0, poll_interval=0.05, timeout=300.0)
        results = executor2.map(execute_job, PLATFORM_SPEC.expand())
        assert all(result.cached for result in results)
        assert ([r.metrics for r in results]
                == [r.metrics for r in platform_serial])
        assert len(cache) == 12  # no re-executions, no new records
    finally:
        broker.stop()


def test_sharded_fleet_survives_shard_broker_restart_mid_lease(tmp_path):
    """The acceptance property on a 2-shard broker fleet with a shard
    dying mid-campaign: a claim is held through one shard's kill and
    restart (``--data-dir`` persistence, same port), its lease survives
    (content-derived ETags restore identically), and a worker-process
    fleet addressed by the comma-separated URL list drains the rest —
    serial == distributed, every job key settled exactly once."""
    spec = _synthetic_spec()
    jobs = spec.expand()
    serial = run_campaign(spec, executor=SerialExecutor())

    brokers = [Broker(data_dir=tmp_path / "shard-0").start(),
               Broker(data_dir=tmp_path / "shard-1").start()]
    try:
        fleet_address = ",".join(b.url for b in brokers)
        router = transport_from_address(fleet_address, retries=3,
                                        retry_delay=0.1)
        queue = WorkQueue(transport=router, lease_seconds=60.0)
        queue.enqueue_grid(jobs)
        held = queue.claim("survivor")
        assert held is not None

        # Kill exactly the shard that owns the held claim, then bring it
        # back on the same port over the same data dir.
        owner = router.shard_index(f"jobs/{held.key}.json")
        port = brokers[owner].port
        brokers[owner].stop()
        brokers[owner] = Broker(port=port,
                                data_dir=tmp_path / f"shard-{owner}").start()

        assert queue.counts()["claimed"] == 1  # the lease survived
        assert queue.heartbeat(held)           # same etag after restart
        queue.complete(held, execute_job(held.job))

        # A process fleet over the sharded address finishes the grid.
        executor = DistributedExecutor(transport=fleet_address, workers=2,
                                       lease_seconds=5.0, poll_interval=0.05,
                                       timeout=300.0)
        results = executor.map(execute_job, jobs)
        assert [r.metrics for r in results] == [r.metrics for r in serial]

        records = executor.last_queue.result_records()
        assert len(records) == len(jobs)  # one settled record per key
        assert executor.last_queue.counts() == {
            "pending": 0, "claimed": 0, "done": len(jobs), "dead": 0}
        assert records[held.job.job_id]["worker"] == "survivor"
        router.close()
    finally:
        for broker in brokers:
            broker.stop()


def test_sharded_fleet_with_worker_crashes_matches_serial(tmp_path,
                                                          platform_serial):
    """12 real-workload jobs over two brokers, three worker processes of
    which two crash mid-job (so crashed leases dangle on both shards):
    the survivors finish the grid and the aggregate equals the serial
    run bit-for-bit — no job lost, no job dead-lettered, crashed claims
    re-executed (attempts >= 2) rather than doubled."""
    brokers = [Broker(data_dir=tmp_path / "shard-a").start(),
               Broker(data_dir=tmp_path / "shard-b").start()]
    try:
        fleet_address = ",".join(b.url for b in brokers)
        executor = DistributedExecutor(
            workers=3,
            transport=fleet_address,
            lease_seconds=1.0,      # short lease => fast crash recovery
            poll_interval=0.05,
            timeout=300.0,
            worker_extra_args=[(), ("--crash-after-claims", "2"),
                               ("--crash-after-claims", "3")],
        )
        distributed = run_campaign(PLATFORM_SPEC, executor=executor)

        assert distributed.ok, distributed.failures
        assert (platform_serial.aggregate_fingerprint()
                == distributed.aggregate_fingerprint())
        assert platform_serial.rows() == distributed.rows()

        queue = executor.last_queue
        counts = queue.counts()
        assert counts["done"] == 12
        assert counts["dead"] == 0
        records = list(queue.result_records().values())
        assert len(records) == 12
        assert max(record["attempts"] for record in records) >= 2
        # Both shards carried real queue traffic: each broker's store
        # holds some of the campaign's settled documents.
        for broker in brokers:
            shard = transport_from_address(broker.url)
            assert shard.list("done/"), f"no settled work on {broker.url}"
    finally:
        for broker in brokers:
            broker.stop()


def test_thread_fleet_executes_each_job_exactly_once_without_any_fs(
        monkeypatch):
    """Property: N thread-fleet workers × one grid over MemoryTransport
    (queue *and* cache) execute every job key exactly once, reproduce the
    serial aggregate, and a second fleet over the warm cache adds zero
    executions — with no filesystem anywhere (both stores are address-less
    in-process transports)."""
    from repro.campaign.dist import worker as worker_mod

    spec = _synthetic_spec()
    serial = run_campaign(spec, executor=SerialExecutor())

    lock = threading.Lock()
    executions = {}
    real_execute = worker_mod.execute_job

    def counting_execute(job):
        with lock:
            executions[job.job_id] = executions.get(job.job_id, 0) + 1
        return real_execute(job)

    monkeypatch.setattr(worker_mod, "execute_job", counting_execute)
    cache = TransportResultCache(MemoryTransport())
    assert cache.root is None and cache.address is None

    executor = DistributedExecutor(transport=MemoryTransport(), workers=4,
                                   cache=cache, lease_seconds=5.0,
                                   poll_interval=0.01, timeout=120.0)
    distributed = run_campaign(spec, executor=executor, cache=cache)
    assert distributed.ok, distributed.failures
    assert (serial.aggregate_fingerprint()
            == distributed.aggregate_fingerprint())
    assert executions == {job.job_id: 1 for job in spec.expand()}

    # A second fleet (fresh queue, same in-memory cache): all served, the
    # execution census does not move.
    executor2 = DistributedExecutor(transport=MemoryTransport(), workers=4,
                                    cache=cache, lease_seconds=5.0,
                                    poll_interval=0.01, timeout=120.0)
    results = executor2.map(execute_job, spec.expand())
    assert all(result.cached for result in results)
    assert executions == {job.job_id: 1 for job in spec.expand()}
    assert len(cache) == len(spec.expand())


def test_map_survives_cost_model_store_outage():
    """Scheduling priors are best-effort: a cache store that rejects the
    cost-model document — at priors load *and* at the post-drain save —
    must degrade to FIFO ordering / lost priors, never fail a campaign
    whose results are in hand."""
    from repro.campaign import TransportError

    class ModellessTransport(MemoryTransport):
        def get(self, key):
            if key == "costmodel.json":
                raise TransportError("model store offline")
            return super().get(key)

        def put(self, key, data):
            if key == "costmodel.json":
                raise TransportError("model store offline")
            return super().put(key, data)

    spec = _synthetic_spec()
    serial = run_campaign(spec, executor=SerialExecutor())
    cache = TransportResultCache(ModellessTransport())
    executor = DistributedExecutor(transport=MemoryTransport(), workers=2,
                                   cache=cache, lease_seconds=5.0,
                                   poll_interval=0.01, timeout=120.0)
    distributed = run_campaign(spec, executor=executor, cache=cache)
    assert distributed.ok, distributed.failures
    assert (serial.aggregate_fingerprint()
            == distributed.aggregate_fingerprint())
    assert len(cache) == len(spec.expand())  # results still cached


def test_orchestrator_persists_when_process_fleet_cannot_reach_cache(tmp_path):
    """A *process* fleet given an address-less (in-memory) cache cannot
    probe it — no --cache can name it.  run_campaign must then keep its
    own cache writes rather than trusting the workers: dedup falls back
    to the orchestrator instead of silently vanishing."""
    spec = _synthetic_spec()
    cache = TransportResultCache(MemoryTransport())
    executor = DistributedExecutor(queue_dir=tmp_path / "queue", workers=2,
                                   cache=cache, poll_interval=0.05,
                                   timeout=120.0)
    assert not executor.workers_share_cache
    first = run_campaign(spec, executor=executor, cache=cache)
    assert first.ok, first.failures
    assert len(cache) == len(spec.expand())  # the orchestrator persisted
    second = run_campaign(spec, cache=cache)
    assert second.cache_hits == len(spec.expand())


def test_incremental_aggregation_over_half_drained_queue(tmp_path):
    """A partially drained grid is already queryable: completed jobs
    aggregate in deterministic order, and pending/running/failed are
    accounted explicitly."""
    spec = _synthetic_spec()
    jobs = spec.expand()
    assert len(jobs) == 8
    serial = run_campaign(spec, executor=SerialExecutor())

    queue = WorkQueue(tmp_path / "queue", lease_seconds=30.0, max_attempts=1)
    queue.enqueue_grid(jobs, cost_model=CostModel())

    # Drain three jobs, dead-letter one (max_attempts=1 buries the first
    # fail), leave one claimed/running and four untouched.
    for _ in range(3):
        item = queue.claim("drainer")
        queue.complete(item, execute_job(item.job))
    assert queue.fail(queue.claim("failer"), "injected failure") == "dead"
    running_item = queue.claim("runner")
    assert running_item is not None

    snap = snapshot_campaign(spec, queue)
    assert snap.total == 8
    assert snap.done == 3
    assert len(snap.failed) == 1
    assert len(snap.running) == 1
    assert len(snap.pending) == 3
    assert not snap.complete
    assert snap.progress == pytest.approx(4 / 8)
    meta = snap.result.meta["incremental"]
    assert meta == {"total": 8, "done": 3, "pending": 3, "running": 1,
                    "failed": 1, "shards_reporting": None}

    # The partial aggregate matches the serial run on the completed subset.
    serial_by_id = {r.job_id: r for r in serial}
    for result in snap.result:
        assert result.metrics == serial_by_id[result.job_id].metrics
    # Table/series machinery works on the partial result unchanged.
    assert len(snap.result.rows()) == 3
    assert "3/8 done" in snap.summary()

    # Finishing the rest closes the books.
    queue.complete(running_item, execute_job(running_item.job))
    while True:
        item = queue.claim("drainer")
        if item is None:
            break
        queue.complete(item, execute_job(item.job))
    final = snapshot_campaign(spec, queue)
    assert final.complete
    assert final.done == 7  # the dead-lettered job stays failed
    assert final.failed == snap.failed
    assert final.progress == 1.0


# -- fleet mechanics at tier-1 scale ---------------------------------------

def test_inline_distributed_executor_matches_serial(tmp_path):
    """workers=0: the whole queue protocol without process spawns."""
    spec = _synthetic_spec()
    serial = run_campaign(spec, executor=SerialExecutor())
    distributed = run_campaign(
        spec, executor=DistributedExecutor(queue_dir=tmp_path / "queue",
                                           workers=0))
    assert (serial.aggregate_fingerprint()
            == distributed.aggregate_fingerprint())


def test_thread_fleet_over_memory_transport_matches_serial():
    """An address-less transport runs the fleet as threads: no process
    spawns, no directories, same aggregates."""
    spec = _synthetic_spec()
    serial = run_campaign(spec, executor=SerialExecutor())
    executor = DistributedExecutor(transport=MemoryTransport(), workers=2,
                                   lease_seconds=5.0, poll_interval=0.01,
                                   timeout=120.0)
    distributed = run_campaign(spec, executor=executor)
    assert (serial.aggregate_fingerprint()
            == distributed.aggregate_fingerprint())
    assert executor.spawned_total == 2


def test_workers_deduplicate_through_shared_cache(tmp_path):
    """A fleet pointed at a warm shared cache serves every job from it."""
    spec = _synthetic_spec()
    cache = ResultCache(tmp_path / "cache")
    first = run_campaign(spec, executor=SerialExecutor(), cache=cache)

    executor = DistributedExecutor(queue_dir=tmp_path / "queue", workers=0,
                                   cache=cache)
    # Bypass run_campaign's own cache probe: the *workers* must dedupe.
    results = executor.map(execute_job, spec.expand())
    assert all(result.cached for result in results)
    assert [r.metrics for r in results] == [r.metrics for r in first]


def test_fresh_results_teach_the_cost_model(tmp_path):
    """run_campaign persists wall times beside the cache; a later
    distributed enqueue orders the queue longest-job-first from them."""
    spec = _synthetic_spec()
    cache = ResultCache(tmp_path / "cache")
    campaign = run_campaign(spec, executor=SerialExecutor(), cache=cache)
    assert (tmp_path / "cache" / "costmodel.json").exists()

    model = CostModel.alongside(cache)
    jobs = spec.expand()
    estimates = [model.estimate(job) for job in jobs]
    walls = [result.wall_time for result in campaign]
    assert estimates == pytest.approx(walls)
    ordered = model.order(jobs)
    assert [model.estimate(job) for job in ordered] == sorted(estimates,
                                                              reverse=True)


def test_worker_requires_execute_job():
    with pytest.raises(ValueError):
        DistributedExecutor(workers=0).map(lambda job: job, [1, 2])


def test_worker_loop_settles_workload_errors_without_retry(tmp_path):
    """workers=0 run of a grid with a deterministically failing job: the
    error result settles as completed (same contract as in-process
    executors), consuming no retry attempts."""
    spec = _synthetic_spec(grid={"workers": [0, 1]})  # workers=0 raises
    serial = run_campaign(spec, executor=SerialExecutor())
    distributed = run_campaign(
        spec, executor=DistributedExecutor(queue_dir=tmp_path / "queue",
                                           workers=0))
    assert not distributed.ok
    assert len(distributed.failures) == 1
    assert (serial.aggregate_fingerprint()
            == distributed.aggregate_fingerprint())
    assert distributed.failures[0].error == serial.failures[0].error
    assert WorkQueue(tmp_path / "queue").counts()["dead"] == 0


def test_snapshot_reports_expired_lease_claims_as_pending(tmp_path):
    """A crashed fleet must not look healthy: a claim whose lease has
    expired is requeueable work, so the snapshot counts it pending (even
    before a scavenger moves the ticket)."""
    clock = [1000.0]
    spec = _synthetic_spec()
    queue = WorkQueue(tmp_path / "queue", lease_seconds=10.0,
                      clock=lambda: clock[0])
    queue.enqueue_grid(spec.expand())
    assert queue.claim("doomed-worker") is not None

    live = snapshot_campaign(spec, queue)
    assert len(live.running) == 1 and len(live.pending) == 7

    clock[0] += 11.0  # the worker died; its lease lapses
    stalled = snapshot_campaign(spec, queue)
    assert stalled.running == []
    assert len(stalled.pending) == 8


def test_inline_map_times_out_on_foreign_lease(tmp_path):
    """workers=0 with a job held by an external worker that never finishes:
    map() must honour its timeout instead of spinning forever."""
    spec = _synthetic_spec(grid={"workers": [1], "tasks": [5]})
    queue = WorkQueue(tmp_path / "queue", lease_seconds=3600.0)
    queue.enqueue_grid(spec.expand())
    assert queue.claim("external-worker") is not None  # never settles

    executor = DistributedExecutor(queue_dir=tmp_path / "queue", workers=0,
                                   poll_interval=0.01, timeout=0.3)
    with pytest.raises(TimeoutError):
        executor.map(execute_job, spec.expand())


def test_unstartable_workers_fail_fast_with_diagnosis(tmp_path, monkeypatch):
    """Workers that die on startup must not spawn-storm until the timeout:
    the executor caps respawns and raises with the exit codes."""
    import sys

    spec = _synthetic_spec(grid={"workers": [1]})
    executor = DistributedExecutor(queue_dir=tmp_path / "queue", workers=2,
                                   poll_interval=0.02, timeout=60.0)
    monkeypatch.setattr(
        DistributedExecutor, "_worker_command",
        lambda self, address, index: [sys.executable, "-c",
                                      "import sys; sys.exit(3)"])
    with pytest.raises(RuntimeError, match=r"exit codes \[3\]"):
        executor.map(execute_job, spec.expand())
    assert executor.respawns <= executor.workers


def test_cost_model_rejects_nan_wall_times():
    from repro.campaign.jobs import JobResult

    model = CostModel()
    job = _synthetic_spec().expand()[0]
    model.observe(JobResult(job_id=job.job_id, case=job.case,
                            params=job.params, seed=job.seed,
                            wall_time=float("nan")))
    assert model.estimate(job) == 1.0  # the poison sample was dropped


def test_unknown_case_dead_letters_after_retries(tmp_path):
    """A job no worker can even start (unknown case) exhausts its attempts
    and surfaces as a dead-lettered failure in the campaign result."""
    spec = SweepSpec(name="nope", case="does-not-exist", grid={"x": [1]})
    queue_dir = tmp_path / "queue"
    executor = DistributedExecutor(queue_dir=queue_dir, workers=0,
                                   max_attempts=2)
    result = run_campaign(spec, executor=executor)
    assert not result.ok
    assert "UnknownCaseError" in result.failures[0].error
    assert WorkQueue(queue_dir).counts()["dead"] == 1


# -- autoscaling -------------------------------------------------------------

def test_autoscale_policy_sizes_from_depth_and_backlog():
    policy = AutoscalePolicy(min_workers=1, max_workers=4,
                             jobs_per_worker=4.0, backlog_seconds=60.0)
    assert policy.desired_workers(pending=0, backlog=0.0) == 0
    assert policy.desired_workers(pending=1, backlog=0.0) == 1
    assert policy.desired_workers(pending=8, backlog=0.0) == 2
    assert policy.desired_workers(pending=100, backlog=0.0) == 4  # clamp
    # The cost backlog can demand more than the depth alone.
    assert policy.desired_workers(pending=2, backlog=600.0) == 4
    assert policy.desired_from({"pending": 8.0, "seconds": 30.0}) == 2
    # Depth-only policies ignore the backlog signal entirely.
    depth_only = AutoscalePolicy(max_workers=8, jobs_per_worker=1.0)
    assert depth_only.desired_workers(pending=3, backlog=1e9) == 3


def test_autoscale_policy_validates():
    with pytest.raises(ValueError):
        AutoscalePolicy(min_workers=-1)
    with pytest.raises(ValueError):
        AutoscalePolicy(min_workers=5, max_workers=2)
    with pytest.raises(ValueError):
        AutoscalePolicy(jobs_per_worker=0.0)
    with pytest.raises(ValueError):
        AutoscalePolicy(backlog_seconds=-1.0)
    with pytest.raises(ValueError):
        AutoscalePolicy(idle_timeout=0.0)


def test_autoscale_spawn_storm_guard_survives_historical_clean_exits():
    """The broken-fleet diagnosis must key off the *newest* worker's exit,
    not the whole history: one early clean attrition exit (code 0) in the
    handle list must not disable the respawn cap when the broker later
    dies and every fresh worker exits 3."""
    class FakeHandle:
        def __init__(self, code):
            self.code = code

        def poll(self):
            return self.code

    executor = DistributedExecutor(
        transport=MemoryTransport(),
        autoscale=AutoscalePolicy(min_workers=1, max_workers=2,
                                  jobs_per_worker=1.0))
    queue = WorkQueue(transport=executor.transport)
    queue.enqueue_grid(_synthetic_spec().expand())  # claimable work exists
    executor._spawn = lambda q, index: FakeHandle(3)  # every spawn dies

    handles = [FakeHandle(0), FakeHandle(3)]  # attrition exit + failure
    with pytest.raises(RuntimeError, match="exit codes"):
        for _ in range(10):
            executor._autoscale_tick(queue, handles)
    assert executor.respawns <= executor._max_respawns()


def test_autoscaled_fleet_matches_serial_and_grows():
    """An autoscaled thread fleet sizes itself from queue depth (8 jobs /
    2 per worker, clamped to 3), drains the grid, and still reproduces
    the serial aggregate bit-for-bit."""
    spec = _synthetic_spec()
    serial = run_campaign(spec, executor=SerialExecutor())
    executor = DistributedExecutor(
        transport=MemoryTransport(),
        autoscale=AutoscalePolicy(min_workers=1, max_workers=3,
                                  jobs_per_worker=2.0, idle_timeout=0.5),
        lease_seconds=5.0, poll_interval=0.01, timeout=120.0)
    distributed = run_campaign(spec, executor=executor)
    assert distributed.ok, distributed.failures
    assert (serial.aggregate_fingerprint()
            == distributed.aggregate_fingerprint())
    assert executor.spawned_total == 3  # grew past a single worker, clamped
    assert executor.last_queue.drained()
