"""Observability-layer tests: metrics registry, spans, ``GET /stats``.

Covers the :mod:`repro.campaign.obs` contracts (labelled counters and
histograms, thread-safety under concurrent increments, Chrome-trace span
shape), the broker's ``GET /stats`` endpoint on BOTH network cores
(shape, monotonic counters, 200 on a fresh broker), the heartbeat
transport-error tolerance, the per-job span pipeline through result
records into ``trace.json``, and the ``dist.stats`` CLI.
"""

import json
import threading
import time
import types
import urllib.request

import pytest

from repro.campaign import SweepSpec
from repro.campaign.dist import HttpTransport, MemoryTransport, WorkQueue
from repro.campaign.dist.executor import DistributedExecutor
from repro.campaign.dist.server import Broker
from repro.campaign.dist.stats import main as stats_main
from repro.campaign.dist.transport import TransportError
from repro.campaign.dist.worker import _LeaseHeartbeat
from repro.campaign.jobs import execute_job
from repro.campaign.obs import (
    MetricsRegistry,
    SpanRecorder,
    StructLogger,
    counter_total,
    series_value,
    spans_from_result_records,
)

CORES = ["asyncio", "thread"]


@pytest.fixture(params=CORES)
def broker(request):
    b = Broker(core=request.param).start()
    try:
        yield b
    finally:
        b.stop()


def _spec(**overrides):
    kwargs = dict(name="obs-spec", case="synthetic",
                  base={"rate": 150.0},
                  grid={"workers": [1, 2], "tasks": [4, 8]})
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


# -- metrics registry --------------------------------------------------------

def test_counter_labels_and_helpers():
    registry = MetricsRegistry()
    requests = registry.counter("requests_total", "requests by route")
    requests.inc(route="/k", method="GET")
    requests.inc(2.0, route="/k", method="GET")
    requests.inc(route="/list", method="GET")
    assert requests.value(route="/k", method="GET") == 3.0
    assert requests.total() == 4.0
    snapshot = registry.snapshot()
    assert counter_total(snapshot, "requests_total") == 4.0
    assert series_value(snapshot, "counters", "requests_total",
                        route="/list", method="GET") == 1.0
    # label order must not matter: same series either way round
    assert series_value(snapshot, "counters", "requests_total",
                        method="GET", route="/k") == 3.0
    assert series_value(snapshot, "counters", "requests_total",
                        route="/nope") is None


def test_registry_get_or_create_and_kind_mismatch():
    registry = MetricsRegistry()
    assert registry.counter("x_total") is registry.counter("x_total")
    with pytest.raises(ValueError, match="x_total"):
        registry.gauge("x_total")
    with pytest.raises(ValueError):
        registry.counter("x_total").inc(-1.0)


def test_gauge_and_histogram_snapshot_shape():
    registry = MetricsRegistry()
    inflight = registry.gauge("inflight")
    inflight.inc()
    inflight.inc()
    inflight.dec()
    latency = registry.histogram("op_seconds")
    for value in (0.0002, 0.002, 0.02, 5.0, 100.0):
        latency.observe(value, op="get")
    snapshot = registry.snapshot()
    assert set(snapshot) == {"counters", "gauges", "histograms",
                             "created_at"}
    assert series_value(snapshot, "gauges", "inflight") == 1.0
    [series] = snapshot["histograms"]["op_seconds"]
    assert series["labels"] == {"op": "get"}
    assert series["count"] == 5
    assert series["min"] == pytest.approx(0.0002)
    assert series["max"] == pytest.approx(100.0)
    assert series["sum"] == pytest.approx(105.0222)
    buckets = series["buckets"]
    assert "+inf" in buckets
    assert buckets["+inf"] == 1        # only 100.0 overflows the top bound
    assert sum(buckets.values()) == 5  # per-bucket counts partition count
    # JSON-serializable end to end (the /stats wire requirement)
    json.loads(json.dumps(snapshot))


def test_registry_thread_safety_under_concurrent_increments():
    registry = MetricsRegistry()
    counter = registry.counter("hits_total")
    histogram = registry.histogram("seconds")
    threads, per_thread = 8, 2500

    def hammer(index):
        for _ in range(per_thread):
            counter.inc(worker=str(index % 2))
            histogram.observe(0.001)

    pool = [threading.Thread(target=hammer, args=(i,)) for i in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    snapshot = registry.snapshot()
    assert counter_total(snapshot, "hits_total") == threads * per_thread
    [series] = snapshot["histograms"]["seconds"]
    assert series["count"] == threads * per_thread


# -- spans -------------------------------------------------------------------

def test_span_jsonl_is_valid_chrome_events(tmp_path):
    recorder = SpanRecorder(process="test-fleet")
    recorder.record("run", start=10.0, end=10.5, thread="w0",
                    metadata={"job": "abc"})
    recorder.record("queue-wait", start=9.0, end=10.0, thread="w0")
    recorder.record("run", start=10.0, end=10.2, thread="w1")
    path = tmp_path / "spans.jsonl"
    assert recorder.write_jsonl(path) == 3
    lines = path.read_text().strip().splitlines()
    events = [json.loads(line) for line in lines]
    # golden shape: every line is a complete Chrome trace event
    for event in events:
        assert event["ph"] == "X"
        assert isinstance(event["ts"], int)
        assert isinstance(event["dur"], int)
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        assert event["name"] in ("run", "queue-wait")
    # start-ordered, microsecond units, stable lane per thread
    assert [e["ts"] for e in events] == sorted(e["ts"] for e in events)
    assert events[0]["ts"] == 9_000_000 and events[0]["dur"] == 1_000_000
    assert len({e["tid"] for e in events}) == 2  # two worker lanes


def test_chrome_trace_file_has_metadata_events(tmp_path):
    recorder = SpanRecorder(process="campaign")
    with recorder.span("store", thread="w0") as meta:
        meta["key"] = "k1"
    path = tmp_path / "trace.json"
    recorder.write_chrome_trace(path)
    trace = json.loads(path.read_text())
    assert trace["displayTimeUnit"] == "ms"
    phases = [e["ph"] for e in trace["traceEvents"]]
    assert "M" in phases and "X" in phases  # names + the span itself
    names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "M"}
    assert {"process_name", "thread_name"} <= names


def test_spans_from_result_records_phases_and_gaps():
    records = {
        "good": {"worker": "w0", "attempts": 1, "cached": False,
                 "timing": {"enqueued_at": 100.0, "claimed_at": 101.0,
                            "started_at": 101.1, "finished_at": 102.0,
                            "stored_at": 102.2}},
        # no claim stamp: queue-wait is unknowable, run/store still emitted
        "partial": {"worker": "w1",
                    "timing": {"started_at": 50.0, "finished_at": 51.0,
                               "stored_at": 51.5}},
        "no-timing": {"worker": "w2"},
        # inverted clock (NTP step): the bogus phase is dropped
        "inverted": {"worker": "w3",
                     "timing": {"started_at": 60.0, "finished_at": 59.0}},
    }
    spans = spans_from_result_records(records)
    by_name = {}
    for span in spans:
        by_name.setdefault(span.name, []).append(span)
    assert len(by_name["queue-wait"]) == 1
    assert len(by_name["run"]) == 2
    assert len(by_name["store"]) == 2
    good_run = [s for s in by_name["run"] if s.metadata["job"] == "good"][0]
    assert good_run.thread == "w0"
    assert good_run.duration == pytest.approx(0.9)


# -- structured logs ---------------------------------------------------------

def test_structlogger_renders_greppable_lines():
    import io

    stream = io.StringIO()
    log = StructLogger("broker", stream=stream)
    log.event("request", method="GET", ms=1.23456, ok=True,
              target="/k/a b")
    log.event("shutdown")
    disabled = StructLogger("quiet", stream=stream, enabled=False)
    disabled.event("never")
    lines = stream.getvalue().splitlines()
    assert lines[0].startswith("[broker] request ")
    assert "method=GET" in lines[0]
    assert "ms=1.235" in lines[0]          # floats compact, not 17 digits
    assert "ok=true" in lines[0]
    assert "target='/k/a b'" in lines[0]   # spaces get quoted
    assert lines[1] == "[broker] shutdown"
    assert len(lines) == 2                 # disabled logger wrote nothing


# -- heartbeat tolerance (satellite: worker survives transient errors) -------

def test_heartbeat_tolerates_transient_transport_errors():
    beats = {"count": 0}

    def flaky_heartbeat(item, metrics=None):
        beats["count"] += 1
        if beats["count"] == 1:
            raise TransportError("broker hiccup", address="http://x")
        return True

    queue = types.SimpleNamespace(lease_seconds=0.2,
                                  heartbeat=flaky_heartbeat)
    item = types.SimpleNamespace(key="job-1")
    import io

    stream = io.StringIO()
    hb = _LeaseHeartbeat(queue, item,
                         metrics=lambda: {"at": time.time()},
                         log=StructLogger("worker", stream=stream))
    hb.start()
    deadline = time.time() + 5.0
    while beats["count"] < 3 and time.time() < deadline:
        time.sleep(0.01)
    hb.stop()
    hb.join(timeout=5.0)
    assert beats["count"] >= 3     # kept beating after the error
    assert hb.errors == 1
    assert "heartbeat-error" in stream.getvalue()
    assert "TransportError" in stream.getvalue()


def test_worker_metrics_travel_through_heartbeats():
    queue = WorkQueue(transport=MemoryTransport(), lease_seconds=30.0)
    queue.enqueue(_spec().expand()[0])
    item = queue.claim(worker="w0")
    assert item is not None
    assert item.enqueued_at is not None  # stamped into the jobs/ record
    assert item.claimed_at is not None   # stamped by the lease document
    assert queue.worker_metrics() == {}  # initial claim carries no metrics
    queue.heartbeat(item, metrics={"at": 1.0, "jobs_per_second": 2.5})
    queue.heartbeat(item, metrics={"at": 2.0, "jobs_per_second": 3.5})
    fleet = queue.worker_metrics()
    assert set(fleet) == {"w0"}
    assert fleet["w0"]["jobs_per_second"] == 3.5  # freshest snapshot wins


# -- GET /stats on both broker cores -----------------------------------------

def test_stats_endpoint_fresh_broker_shape(broker):
    # a fresh broker must serve /stats immediately: 200, never 404
    with urllib.request.urlopen(f"{broker.url}/stats", timeout=10) as resp:
        assert resp.status == 200
        payload = json.loads(resp.read())
    server = payload["server"]
    assert server["core"] == broker.core
    assert server["store"] == "MemoryTransport"
    assert server["lock_stripes"] >= 1
    assert server["uptime_seconds"] >= 0.0
    metrics = payload["metrics"]
    assert set(metrics) >= {"counters", "gauges", "histograms"}
    # the /stats request itself is metered: it is in flight right now
    assert series_value(metrics, "gauges", "broker_inflight_requests") == 1.0


def test_stats_counters_monotonic_and_labelled(broker):
    transport = HttpTransport(broker.url)
    try:
        transport.put("k/a.json", b"{}")
        transport.get("k/a.json")
        transport.get("k/missing.json")
        transport.list("k/")
        first = transport.stats()["metrics"]
        transport.get("k/a.json")
        second = transport.stats()["metrics"]
    finally:
        transport.close()
    # per-key URLs collapse to one "/k" route label — bounded cardinality
    puts = series_value(first, "counters", "broker_requests_total",
                        route="/k", method="PUT", status="200")
    assert puts == 1.0
    misses = series_value(first, "counters", "broker_requests_total",
                          route="/k", method="GET", status="404")
    assert misses == 1.0
    assert (counter_total(second, "broker_requests_total")
            > counter_total(first, "broker_requests_total"))
    assert counter_total(second, "broker_bytes_in_total") >= 2.0
    assert counter_total(second, "broker_bytes_out_total") >= 2.0
    # request latency histogram grew alongside
    series = second["histograms"]["broker_request_seconds"]
    assert sum(entry["count"] for entry in series) >= 6


def test_stats_counts_claim_outcomes(broker):
    transport = HttpTransport(broker.url)
    try:
        queue = WorkQueue(transport=transport, lease_seconds=30.0)
        assert queue.claim(worker="w0") is None  # drained queue
        job = _spec().expand()[0]
        queue.enqueue(job)
        assert queue.claim(worker="w0") is not None
        snapshot = transport.stats()["metrics"]
    finally:
        transport.close()
    assert series_value(snapshot, "counters", "broker_claims_total",
                        outcome="empty") >= 1.0
    assert series_value(snapshot, "counters", "broker_claims_total",
                        outcome="claimed") == 1.0


# -- client-side instrumentation ---------------------------------------------

def test_transport_meters_ops_into_private_registry(broker):
    registry = MetricsRegistry()
    transport = HttpTransport(broker.url, registry=registry)
    try:
        transport.put("k/a.json", b"{}")
        transport.get("k/a.json")
        transport.get("k/a.json")
    finally:
        transport.close()
    snapshot = registry.snapshot()
    assert series_value(snapshot, "counters", "transport_ops_total",
                        op="get") == 2.0
    assert series_value(snapshot, "counters", "transport_ops_total",
                        op="put") == 1.0
    # keep-alive: first op opens the pooled connection, the rest reuse it
    assert series_value(snapshot, "counters", "transport_connections_total",
                        event="opened") == 1.0
    assert series_value(snapshot, "counters", "transport_connections_total",
                        event="reused") == 2.0
    series = snapshot["histograms"]["transport_op_seconds"]
    assert sum(entry["count"] for entry in series) == 3


# -- executor trace + stats CLI ----------------------------------------------

def test_executor_writes_perfetto_loadable_trace(tmp_path):
    trace_path = tmp_path / "trace.json"
    executor = DistributedExecutor(transport=MemoryTransport(), workers=0,
                                   trace_path=trace_path)
    jobs = _spec().expand()
    results = executor.map(execute_job, jobs)
    assert len(results) == len(jobs)
    trace = json.loads(trace_path.read_text())
    complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert {e["name"] for e in complete} >= {"run", "store"}
    jobs_traced = {e["args"]["job"] for e in complete if "job" in e["args"]}
    assert len(jobs_traced) == len(jobs)  # every job left spans
    for event in complete:
        assert event["dur"] >= 0


def test_stats_cli_one_shot_and_watch(broker, capsys):
    transport = HttpTransport(broker.url)
    try:
        queue = WorkQueue(transport=transport, lease_seconds=30.0)
        queue.enqueue(_spec().expand()[0])
    finally:
        transport.close()
    assert stats_main([broker.url]) == 0
    line = capsys.readouterr().out.strip()
    assert "pending 1" in line
    assert "req/s" in line and "in" in line and "out" in line
    assert stats_main([broker.url, "--watch", "--interval", "0.05",
                       "--ticks", "2"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 2


def test_stats_cli_exit_codes():
    assert stats_main(["not-a-url"]) == 2
    broker = Broker(core="asyncio").start()
    url = broker.url
    broker.stop()
    assert stats_main([url]) == 3
