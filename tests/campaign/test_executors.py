"""Executor semantics and campaign determinism across executors."""

import pytest

from repro.campaign import (
    AsyncExecutor,
    CampaignResult,
    MultiprocessingExecutor,
    SerialExecutor,
    SweepSpec,
    UnknownCaseError,
    execute_job,
    run_campaign,
)


def _spec(**overrides):
    kwargs = dict(name="exec-spec", case="synthetic",
                  base={"rate": 120.0},
                  grid={"workers": [1, 2, 3], "tasks": [6, 12, 24, 48]})
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


def test_serial_executor_preserves_order():
    assert SerialExecutor().map(lambda x: x * 2, [3, 1, 2]) == [6, 2, 4]


def test_multiprocessing_executor_preserves_order():
    executor = MultiprocessingExecutor(processes=3)
    items = list(range(20))
    assert executor.map(_double, items) == [2 * i for i in items]


def _double(x):
    return 2 * x


def test_multiprocessing_single_item_runs_inline():
    executor = MultiprocessingExecutor(processes=4)
    assert executor.map(_double, [21]) == [42]


def test_async_executor_preserves_order():
    executor = AsyncExecutor(max_workers=4)
    items = list(range(50))
    assert executor.map(_double, items) == [2 * i for i in items]
    assert executor.map(_double, []) == []
    assert executor.map(_double, [21]) == [42]
    assert executor.name == "async"


def test_async_executor_runs_threads_in_one_process():
    import os
    import threading
    import time

    def probe(_x):
        time.sleep(0.01)  # hold the thread so the pool must fan out
        return os.getpid(), threading.get_ident()

    seen = AsyncExecutor(max_workers=4).map(probe, range(16))
    assert {pid for pid, _tid in seen} == {os.getpid()}  # no pickling/forking
    assert len({tid for _pid, tid in seen}) > 1  # genuinely overlapped


def test_async_executor_rejects_bad_worker_count():
    with pytest.raises(ValueError):
        AsyncExecutor(max_workers=0)


def test_identical_aggregates_under_serial_and_async():
    spec = _spec()
    serial = run_campaign(spec, executor=SerialExecutor())
    threaded = run_campaign(spec, executor=AsyncExecutor(max_workers=4))
    assert serial.ok and threaded.ok
    assert serial.aggregate_fingerprint() == threaded.aggregate_fingerprint()
    assert threaded.executor == "async"


def test_identical_aggregates_under_serial_and_parallel():
    """The acceptance property: a >=12-job grid produces bit-identical
    aggregate results no matter which executor ran it."""
    spec = _spec()
    assert spec.job_count == 12
    serial = run_campaign(spec, executor=SerialExecutor())
    parallel = run_campaign(spec, executor=MultiprocessingExecutor(processes=4))
    assert len(serial) == len(parallel) == 12
    assert serial.ok and parallel.ok
    assert serial.aggregate_fingerprint() == parallel.aggregate_fingerprint()
    assert serial.rows() == parallel.rows()
    assert serial.executor == "serial"
    assert parallel.executor == "multiprocessing"


def test_job_failures_are_isolated_not_fatal():
    spec = SweepSpec(name="failing", case="synthetic",
                     grid={"workers": [0, 1]})  # workers=0 raises ValueError
    result = run_campaign(spec)
    assert not result.ok
    assert len(result.failures) == 1
    assert "ValueError" in result.failures[0].error
    ok_jobs = [r for r in result if r.ok]
    assert len(ok_jobs) == 1


def test_failed_jobs_are_not_cached(tmp_path):
    from repro.campaign import ResultCache

    cache = ResultCache(tmp_path)
    spec = SweepSpec(name="failing", case="synthetic",
                     grid={"workers": [0, 1]})
    run_campaign(spec, cache=cache)
    assert len(cache) == 1  # only the successful job was persisted
    again = run_campaign(spec, cache=cache)
    assert again.cache_hits == 1
    assert again.cache_misses == 1


def test_unknown_case_raises():
    spec = SweepSpec(name="nope", case="does-not-exist", grid={"x": [1]})
    with pytest.raises(UnknownCaseError):
        execute_job(spec.expand()[0])


def test_campaign_result_views():
    result = run_campaign(_spec())
    xs, ys = result.series("tasks", "makespan", where={"workers": 2})
    assert xs == [6, 12, 24, 48]
    assert ys == sorted(ys)  # more tasks -> longer makespan
    groups = result.group_by("workers")
    assert set(groups) == {1, 2, 3}
    assert all(len(group) == 4 for group in groups.values())
    table = result.table(["workers", "tasks", "completed"])
    assert len(table) == 12
    assert all(row[2] == row[1] for row in table)  # all tasks completed
    best = result.best("makespan", minimize=True)
    assert best.params["tasks"] == 6
    one = result.one({"workers": 3, "tasks": 48})
    assert one.metrics["completed"] == 48
    assert isinstance(result, CampaignResult)
    assert "12 jobs" in result.summary()
