"""Shared fixtures for POSIX-layer tests."""

import pytest

from repro.sim import Environment
from repro.storage import LocalFilesystem, StreamingDevice
from repro.posix import SimulatedOS


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def os_image(env):
    """A SimulatedOS with a fast, flat SSD mounted at /data."""
    image = SimulatedOS(env)
    device = StreamingDevice(env, "ssd", read_bandwidth=500e6,
                             write_bandwidth=400e6, latency=50e-6)
    image.mount("/data", LocalFilesystem(env, device, name="ext4(ssd)"))
    return image


def run(env, gen):
    """Run a generator as a process and return its result."""
    return env.run(until=env.process(gen))
