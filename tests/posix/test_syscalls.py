"""Tests for the POSIX syscall layer."""

import pytest

from repro.posix import (
    Errno,
    O_APPEND,
    O_CREAT,
    O_RDONLY,
    O_WRONLY,
    SEEK_CUR,
    SEEK_END,
    SimBytes,
    SimOSError,
)
from tests.posix.conftest import run


def test_open_read_close_roundtrip(os_image, env):
    os_image.vfs.create_file("/data/f.bin", size=1_000_000)

    def proc():
        fd = yield from os_image.posix.open("/data/f.bin")
        data = yield from os_image.posix.read(fd, 400_000)
        rest = yield from os_image.posix.read(fd, 1_000_000)
        eof = yield from os_image.posix.read(fd, 100)
        yield from os_image.posix.close(fd)
        return data.nbytes, rest.nbytes, eof.nbytes

    assert run(env, proc()) == (400_000, 600_000, 0)
    assert env.now > 0


def test_open_missing_file_raises_enoent(os_image, env):
    def proc():
        try:
            yield from os_image.posix.open("/data/missing")
        except SimOSError as exc:
            return exc.errno

    assert run(env, proc()) == Errno.ENOENT


def test_open_with_creat_creates_file(os_image, env):
    def proc():
        fd = yield from os_image.posix.open("/data/new.log", O_WRONLY | O_CREAT)
        n = yield from os_image.posix.write(fd, b"hello world")
        yield from os_image.posix.close(fd)
        return n

    assert run(env, proc()) == 11
    assert os_image.vfs.lookup("/data/new.log").size == 11


def test_pread_does_not_move_offset(os_image, env):
    os_image.vfs.create_file("/data/f", size=1000)

    def proc():
        fd = yield from os_image.posix.open("/data/f")
        a = yield from os_image.posix.pread(fd, 100, 500)
        b = yield from os_image.posix.read(fd, 100)
        yield from os_image.posix.close(fd)
        return a.nbytes, b.nbytes

    # The pread at offset 500 must not affect the sequential read at 0.
    assert run(env, proc()) == (100, 100)


def test_pread_past_eof_returns_zero(os_image, env):
    os_image.vfs.create_file("/data/f", size=100)

    def proc():
        fd = yield from os_image.posix.open("/data/f")
        z = yield from os_image.posix.pread(fd, 4096, 100)
        yield from os_image.posix.close(fd)
        return z.nbytes

    assert run(env, proc()) == 0


def test_read_on_write_only_fd_fails(os_image, env):
    os_image.vfs.create_file("/data/f", size=100)

    def proc():
        fd = yield from os_image.posix.open("/data/f", O_WRONLY)
        try:
            yield from os_image.posix.read(fd, 10)
        except SimOSError as exc:
            return exc.errno

    assert run(env, proc()) == Errno.EBADF


def test_write_then_read_back_content(os_image, env):
    def proc():
        fd = yield from os_image.posix.open("/data/cfg", O_WRONLY | O_CREAT)
        yield from os_image.posix.write(fd, b"abcdef")
        yield from os_image.posix.close(fd)
        fd = yield from os_image.posix.open("/data/cfg", O_RDONLY)
        data = yield from os_image.posix.read(fd, 100)
        yield from os_image.posix.close(fd)
        return data.to_bytes()

    assert run(env, proc()) == b"abcdef"


def test_append_mode_writes_at_end(os_image, env):
    os_image.vfs.create_file("/data/log", content=b"12345")

    def proc():
        fd = yield from os_image.posix.open("/data/log", O_WRONLY | O_APPEND)
        yield from os_image.posix.write(fd, b"678")
        yield from os_image.posix.close(fd)

    run(env, proc())
    assert os_image.vfs.lookup("/data/log").size == 8


def test_lseek_whence_variants(os_image, env):
    os_image.vfs.create_file("/data/f", size=1000)

    def proc():
        fd = yield from os_image.posix.open("/data/f")
        a = yield from os_image.posix.lseek(fd, 100)
        b = yield from os_image.posix.lseek(fd, 50, SEEK_CUR)
        c = yield from os_image.posix.lseek(fd, -10, SEEK_END)
        yield from os_image.posix.close(fd)
        return a, b, c

    assert run(env, proc()) == (100, 150, 990)


def test_lseek_negative_offset_rejected(os_image, env):
    os_image.vfs.create_file("/data/f", size=10)

    def proc():
        fd = yield from os_image.posix.open("/data/f")
        try:
            yield from os_image.posix.lseek(fd, -100)
        except SimOSError as exc:
            return exc.errno

    assert run(env, proc()) == Errno.EINVAL


def test_stat_and_fstat_report_size(os_image, env):
    os_image.vfs.create_file("/data/f", size=12345)

    def proc():
        st = yield from os_image.posix.stat("/data/f")
        fd = yield from os_image.posix.open("/data/f")
        fst = yield from os_image.posix.fstat(fd)
        yield from os_image.posix.close(fd)
        return st.st_size, fst.st_size, st.is_dir

    assert run(env, proc()) == (12345, 12345, False)


def test_unlink_removes_file(os_image, env):
    os_image.vfs.create_file("/data/f", size=10)

    def proc():
        yield from os_image.posix.unlink("/data/f")

    run(env, proc())
    assert not os_image.vfs.exists("/data/f")


def test_bad_fd_raises_ebadf(os_image, env):
    def proc():
        try:
            yield from os_image.posix.read(999, 10)
        except SimOSError as exc:
            return exc.errno

    assert run(env, proc()) == Errno.EBADF


def test_double_close_raises(os_image, env):
    os_image.vfs.create_file("/data/f", size=10)

    def proc():
        fd = yield from os_image.posix.open("/data/f")
        yield from os_image.posix.close(fd)
        try:
            yield from os_image.posix.close(fd)
        except SimOSError as exc:
            return exc.errno

    assert run(env, proc()) == Errno.EBADF


def test_read_time_scales_with_size(os_image, env):
    """Larger reads must take proportionally longer on the device."""
    os_image.vfs.create_file("/data/small", size=1_000_000)
    os_image.vfs.create_file("/data/big", size=100_000_000)
    os_image.vfs.enable_page_cache = False

    def read_all(path, size):
        fd = yield from os_image.posix.open(path)
        yield from os_image.posix.read(fd, size)
        yield from os_image.posix.close(fd)

    t0 = env.now
    run(env, read_all("/data/small", 1_000_000))
    small_time = env.now - t0
    t1 = env.now
    run(env, read_all("/data/big", 100_000_000))
    big_time = env.now - t1
    assert big_time > 50 * small_time


def test_second_read_hits_page_cache(os_image, env):
    os_image.vfs.create_file("/data/f", size=10_000_000)

    def read_once():
        fd = yield from os_image.posix.open("/data/f")
        yield from os_image.posix.read(fd, 10_000_000)
        yield from os_image.posix.close(fd)

    t0 = env.now
    run(env, read_once())
    cold = env.now - t0
    t1 = env.now
    run(env, read_once())
    warm = env.now - t1
    assert warm < cold / 5
    # And dropping caches restores the cold path.
    os_image.drop_caches()
    t2 = env.now
    run(env, read_once())
    assert env.now - t2 > warm * 5


def test_call_counts_tracked(os_image, env):
    os_image.vfs.create_file("/data/f", size=100)

    def proc():
        fd = yield from os_image.posix.open("/data/f")
        yield from os_image.posix.pread(fd, 100, 0)
        yield from os_image.posix.close(fd)

    run(env, proc())
    assert os_image.posix.call_counts["open"] == 1
    assert os_image.posix.call_counts["pread"] == 1
    assert os_image.posix.call_counts["close"] == 1
