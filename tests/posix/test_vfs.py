"""Tests for the virtual filesystem namespace."""

import pytest

from repro.posix import SimOSError, SimulatedOS
from repro.posix.vfs import normalize_path
from repro.sim import Environment
from repro.storage import LocalFilesystem, StreamingDevice, optane_ssd


@pytest.fixture
def os_image():
    env = Environment()
    image = SimulatedOS(env)
    device = StreamingDevice(env, "ssd", read_bandwidth=500e6, latency=10e-6)
    image.mount("/data", LocalFilesystem(env, device))
    return image


def test_normalize_path_requires_absolute():
    with pytest.raises(SimOSError):
        normalize_path("relative/path")
    assert normalize_path("/a//b/../c") == "/a/c"


def test_create_and_lookup_file(os_image):
    vfs = os_image.vfs
    inode = vfs.create_file("/data/train/img001.jpg", size=90_000)
    assert vfs.exists("/data/train/img001.jpg")
    assert vfs.lookup("/data/train/img001.jpg") is inode
    assert inode.size == 90_000
    # Parent directories are created implicitly.
    assert vfs.lookup("/data/train").is_dir


def test_create_duplicate_rejected(os_image):
    os_image.vfs.create_file("/data/a", size=1)
    with pytest.raises(SimOSError):
        os_image.vfs.create_file("/data/a", size=1)


def test_lookup_missing_raises_enoent(os_image):
    from repro.posix import Errno
    with pytest.raises(SimOSError) as exc:
        os_image.vfs.lookup("/data/missing")
    assert exc.value.errno == Errno.ENOENT


def test_listdir_and_files_under(os_image):
    vfs = os_image.vfs
    vfs.create_file("/data/a/x.bin", size=10)
    vfs.create_file("/data/a/y.bin", size=20)
    vfs.create_file("/data/b/z.bin", size=30)
    assert vfs.listdir("/data") == ["a", "b"]
    assert vfs.listdir("/data/a") == ["x.bin", "y.bin"]
    under_a = vfs.files_under("/data/a")
    assert [i.path for i in under_a] == ["/data/a/x.bin", "/data/a/y.bin"]
    assert vfs.total_bytes_under("/data") == 60


def test_listdir_on_file_raises(os_image):
    os_image.vfs.create_file("/data/a", size=1)
    with pytest.raises(SimOSError):
        os_image.vfs.listdir("/data/a")


def test_remove_file(os_image):
    vfs = os_image.vfs
    vfs.create_file("/data/a", size=1)
    vfs.remove("/data/a")
    assert not vfs.exists("/data/a")
    with pytest.raises(SimOSError):
        vfs.remove("/data")  # directory


def test_real_content_roundtrip(os_image):
    vfs = os_image.vfs
    inode = vfs.create_file("/data/cfg.json", content=b'{"a": 1}')
    assert inode.size == 8
    data = vfs.read_span(inode, 0, 100)
    assert data.to_bytes() == b'{"a": 1}'


def test_large_content_becomes_synthetic(os_image):
    from repro.posix.vfs import MAX_REAL_CONTENT
    vfs = os_image.vfs
    inode = vfs.create_file("/data/huge.bin", content=b"x" * (MAX_REAL_CONTENT + 1))
    assert inode.content is None
    assert inode.size == MAX_REAL_CONTENT + 1


def test_placement_override_changes_backend(os_image):
    env = os_image.env
    fast = LocalFilesystem(env, optane_ssd(env), name="optane")
    os_image.vfs.create_file("/data/f", size=100)
    before = os_image.vfs.backend_for("/data/f")
    os_image.vfs.set_placement("/data/f", fast)
    assert os_image.vfs.backend_for("/data/f") is fast
    assert os_image.vfs.backend_for("/data/other") is before


def test_drop_caches_clears_page_cache(os_image):
    vfs = os_image.vfs
    inode = vfs.create_file("/data/f", size=1000)
    vfs.page_cache.insert(inode.key, 0, 1000)
    assert vfs.page_cache.used_bytes == 1000
    os_image.drop_caches()
    assert vfs.page_cache.used_bytes == 0


def test_devices_enumerated_through_os(os_image):
    assert [d.name for d in os_image.devices()] == ["ssd"]
