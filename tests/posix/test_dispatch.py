"""Tests for the symbol dispatch table (the GOT analogue)."""

import pytest

from repro.posix import IO_SYMBOLS, SimBytes, SymbolNotFound, SymbolTable
from tests.posix.conftest import run


def test_default_symbols_registered(os_image):
    names = os_image.symbols.symbols()
    for symbol in IO_SYMBOLS:
        assert symbol in names


def test_call_routes_to_libc_implementation(os_image, env):
    os_image.vfs.create_file("/data/f", size=100)

    def proc():
        fd = yield from os_image.call("open", "/data/f")
        data = yield from os_image.call("pread", fd, 100, 0)
        yield from os_image.call("close", fd)
        return data.nbytes

    assert run(env, proc()) == 100


def test_patch_redirects_and_forwards(os_image, env):
    os_image.vfs.create_file("/data/f", size=100)
    seen = []

    real_pread = os_image.symbols.resolve("pread")

    def wrapped_pread(fd, count, offset):
        seen.append((count, offset))
        result = yield from real_pread(fd, count, offset)
        return result

    os_image.symbols.patch("pread", wrapped_pread)
    assert os_image.symbols.is_patched("pread")
    assert os_image.symbols.patched_symbols() == ["pread"]

    def proc():
        fd = yield from os_image.call("open", "/data/f")
        data = yield from os_image.call("pread", fd, 50, 10)
        yield from os_image.call("close", fd)
        return data.nbytes

    assert run(env, proc()) == 50
    assert seen == [(50, 10)]


def test_restore_reverts_patch(os_image, env):
    os_image.vfs.create_file("/data/f", size=10)
    calls = []

    real_open = os_image.symbols.resolve("open")

    def wrapped_open(path, flags=0):
        calls.append(path)
        return (yield from real_open(path, flags))

    os_image.symbols.patch("open", wrapped_open)
    os_image.symbols.restore("open")
    assert not os_image.symbols.is_patched("open")

    def proc():
        fd = yield from os_image.call("open", "/data/f")
        yield from os_image.call("close", fd)

    run(env, proc())
    assert calls == []


def test_restore_all_clears_every_patch(os_image):
    def fake(*args):
        return iter(())

    os_image.symbols.patch("read", fake)
    os_image.symbols.patch("fwrite", fake)
    os_image.symbols.restore_all()
    assert os_image.symbols.patched_symbols() == []


def test_unknown_symbol_raises(os_image):
    with pytest.raises(SymbolNotFound):
        os_image.symbols.resolve("mmap")
    with pytest.raises(SymbolNotFound):
        os_image.symbols.restore("mmap")


def test_patch_returns_previous_binding(os_image):
    original = os_image.symbols.resolve("read")

    def w1(*args):
        return iter(())

    def w2(*args):
        return iter(())

    prev1 = os_image.symbols.patch("read", w1)
    prev2 = os_image.symbols.patch("read", w2)
    assert prev1 is original
    assert prev2 is w1


def test_patch_log_records_history(os_image):
    def fake(*args):
        return iter(())

    os_image.symbols.patch("read", fake)
    os_image.symbols.restore("read")
    log = os_image.symbols.patch_log
    assert ("read", "patch") in log
    assert ("read", "restore") in log


def test_register_rejects_non_callable():
    table = SymbolTable()
    with pytest.raises(TypeError):
        table.register("open", 42)
    table.register("open", lambda: iter(()))
    with pytest.raises(TypeError):
        table.patch("open", "not callable")
