"""Tests for the buffered STDIO layer."""

import pytest

from repro.posix import SimBytes, SimOSError
from tests.posix.conftest import run


def test_fopen_fwrite_fclose_writes_bytes(os_image, env):
    def proc():
        stream = yield from os_image.stdio.fopen("/data/ckpt.bin", "wb")
        total = 0
        for _ in range(5):
            total += yield from os_image.stdio.fwrite(stream, SimBytes(100_000))
        yield from os_image.stdio.fclose(stream)
        return total

    assert run(env, proc()) == 500_000
    assert os_image.vfs.lookup("/data/ckpt.bin").size == 500_000


def test_fwrite_buffers_small_writes(os_image, env):
    """Writes below the stdio buffer size must not hit the POSIX layer."""
    def proc():
        stream = yield from os_image.stdio.fopen("/data/log", "w")
        yield from os_image.stdio.fwrite(stream, SimBytes(100))
        yield from os_image.stdio.fwrite(stream, SimBytes(100))
        pending = os_image.posix.call_counts.get("pwrite", 0)
        yield from os_image.stdio.fflush(stream)
        flushed = os_image.posix.call_counts.get("pwrite", 0)
        yield from os_image.stdio.fclose(stream)
        return pending, flushed

    pending, flushed = run(env, proc())
    assert pending == 0
    assert flushed == 1


def test_large_fwrite_flushes_immediately(os_image, env):
    def proc():
        stream = yield from os_image.stdio.fopen("/data/big", "wb")
        yield from os_image.stdio.fwrite(stream, SimBytes(1_000_000))
        return os_image.posix.call_counts.get("pwrite", 0)

    assert run(env, proc()) == 1


def test_fread_advances_position(os_image, env):
    os_image.vfs.create_file("/data/f", size=1000)

    def proc():
        stream = yield from os_image.stdio.fopen("/data/f", "rb")
        a = yield from os_image.stdio.fread(stream, 600)
        b = yield from os_image.stdio.fread(stream, 600)
        c = yield from os_image.stdio.fread(stream, 600)
        pos = yield from os_image.stdio.ftell(stream)
        yield from os_image.stdio.fclose(stream)
        return a.nbytes, b.nbytes, c.nbytes, pos

    assert run(env, proc()) == (600, 400, 0, 1000)


def test_fseek_repositions_stream(os_image, env):
    os_image.vfs.create_file("/data/f", size=1000)

    def proc():
        stream = yield from os_image.stdio.fopen("/data/f", "rb")
        yield from os_image.stdio.fseek(stream, 900)
        data = yield from os_image.stdio.fread(stream, 500)
        yield from os_image.stdio.fclose(stream)
        return data.nbytes

    assert run(env, proc()) == 100


def test_append_mode_starts_at_end(os_image, env):
    os_image.vfs.create_file("/data/log", size=50)

    def proc():
        stream = yield from os_image.stdio.fopen("/data/log", "ab")
        pos = yield from os_image.stdio.ftell(stream)
        yield from os_image.stdio.fwrite(stream, SimBytes(25))
        yield from os_image.stdio.fclose(stream)
        return pos

    assert run(env, proc()) == 50
    assert os_image.vfs.lookup("/data/log").size == 75


def test_unsupported_mode_rejected(os_image, env):
    def proc():
        try:
            yield from os_image.stdio.fopen("/data/f", "x+")
        except SimOSError:
            return "rejected"

    assert run(env, proc()) == "rejected"


def test_operations_on_closed_stream_fail(os_image, env):
    os_image.vfs.create_file("/data/f", size=10)

    def proc():
        stream = yield from os_image.stdio.fopen("/data/f", "rb")
        yield from os_image.stdio.fclose(stream)
        try:
            yield from os_image.stdio.fread(stream, 10)
        except SimOSError:
            return "rejected"

    assert run(env, proc()) == "rejected"


def test_stream_counters(os_image, env):
    def proc():
        stream = yield from os_image.stdio.fopen("/data/out", "wb")
        for _ in range(7):
            yield from os_image.stdio.fwrite(stream, SimBytes(10))
        yield from os_image.stdio.fflush(stream)
        writes, flushes = stream.writes, stream.flushes
        yield from os_image.stdio.fclose(stream)
        return writes, flushes

    assert run(env, proc()) == (7, 1)


def test_fclose_flushes_pending_data(os_image, env):
    def proc():
        stream = yield from os_image.stdio.fopen("/data/out", "wb")
        yield from os_image.stdio.fwrite(stream, SimBytes(123))
        yield from os_image.stdio.fclose(stream)

    run(env, proc())
    assert os_image.vfs.lookup("/data/out").size == 123
