"""Tests for reporting helpers and SimBytes plus related property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.posix import SimBytes
from repro.darshan import size_bucket
from repro.tools import (
    PaperComparison,
    comparison_table,
    format_table,
    gib,
    mbps,
    mib,
    percent,
    within_factor,
)


# -- reporting ---------------------------------------------------------------

def test_format_table_alignment():
    text = format_table(["a", "bbbb"], [["x", 1], ["yyyy", 22]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")
    assert "yyyy" in lines[3]


def test_comparison_table_marks_mismatches():
    rows = [PaperComparison("q1", "1", "1", True),
            PaperComparison("q2", "2", "3", False, note="off")]
    text = comparison_table(rows)
    assert "ok" in text and "DIFFERS" in text and "off" in text


def test_unit_formatters():
    assert mbps(94e6) == "94.0 MB/s"
    assert mib(1 << 20) == "1.0 MiB"
    assert gib(1 << 30) == "1.00 GiB"
    assert percent(0.197) == "19.7 %"


def test_within_factor():
    assert within_factor(94, 100, 1.1)
    assert not within_factor(50, 100, 1.5)
    assert within_factor(0.0, 0.0, 2.0)


@given(st.floats(min_value=1e-6, max_value=1e12),
       st.floats(min_value=1.0, max_value=10.0))
@settings(max_examples=50, deadline=None)
def test_within_factor_symmetric(value, factor):
    assert within_factor(value, value, factor)
    assert within_factor(value * factor * 1.01, value, factor) is False


# -- SimBytes -----------------------------------------------------------------

def test_simbytes_coerce_variants():
    assert SimBytes.coerce(b"abc").nbytes == 3
    assert SimBytes.coerce(10).nbytes == 10
    original = SimBytes(5)
    assert SimBytes.coerce(original) is original
    with pytest.raises(TypeError):
        SimBytes.coerce(3.5)


def test_simbytes_validation():
    with pytest.raises(ValueError):
        SimBytes(-1)
    with pytest.raises(ValueError):
        SimBytes(3, b"ab")


def test_simbytes_equality_and_slice():
    real = SimBytes(4, b"abcd")
    assert real == b"abcd"
    assert real.slice(1, 3).to_bytes() == b"bc"
    synthetic = SimBytes(4)
    assert synthetic == SimBytes(4)
    assert synthetic.is_synthetic
    assert bool(SimBytes(0)) is False


@given(st.integers(min_value=0, max_value=10**7),
       st.integers(min_value=0, max_value=10**7),
       st.integers(min_value=0, max_value=10**7))
@settings(max_examples=100, deadline=None)
def test_simbytes_slice_never_exceeds_bounds(nbytes, start, stop):
    data = SimBytes(nbytes)
    piece = data.slice(start, stop)
    assert 0 <= piece.nbytes <= nbytes
    if start <= stop <= nbytes:
        assert piece.nbytes == stop - max(0, min(start, nbytes))


# -- Darshan size buckets (property) -------------------------------------------

@given(st.integers(min_value=0, max_value=2**40))
@settings(max_examples=200, deadline=None)
def test_size_bucket_total_order(nbytes):
    """Every size maps to exactly one bucket and boundaries are inclusive."""
    label = size_bucket(nbytes)
    assert label in {
        "0_100", "100_1K", "1K_10K", "10K_100K", "100K_1M", "1M_4M",
        "4M_10M", "10M_100M", "100M_1G", "1G_PLUS"}
    if nbytes <= 100:
        assert label == "0_100"
    if nbytes > (1 << 30):
        assert label == "1G_PLUS"


def test_size_bucket_rejects_negative():
    with pytest.raises(ValueError):
        size_bucket(-1)
