#!/usr/bin/env python
"""Quickstart: profile the I/O of a tiny training run with tf-Darshan.

The example builds the Greendog-like workstation platform, lays out a small
synthetic dataset on its HDD, trains a few steps of the malware CNN with the
Keras-style API while the TensorBoard callback profiles the whole run, and
prints the extended Input-Pipeline Analysis page that tf-Darshan adds —
POSIX operation counts, bandwidth, read-size distribution and access
pattern.

Run with:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.core import build_plugin_data, enable, last_profile
from repro.tfmini.keras import MalwareCNN, TensorBoard
from repro.workloads import build_malware_dataset, greendog
from repro.workloads.pipelines import build_malware_pipeline


def main() -> None:
    # 1. A simulated workstation: 8 cores, an RTX 2060, HDD + SSD + Optane.
    platform = greendog()
    runtime = platform.runtime

    # 2. A small synthetic slice of the malware corpus on the HDD.
    dataset = build_malware_dataset(platform.os.vfs, scale=0.01, seed=0)
    print(f"dataset: {dataset.file_count} files, "
          f"{dataset.total_bytes / 1e9:.2f} GB, "
          f"median {dataset.median_bytes / 1e6:.1f} MB")

    # 3. Enable tf-Darshan: from now on every profiling session includes
    #    fine-grained POSIX/STDIO statistics.
    enable(runtime)

    # 4. A tf.data input pipeline and a Keras-style training run, profiled
    #    end to end by the TensorBoard callback.
    steps = 6
    pipeline = build_malware_pipeline(dataset.paths, batch_size=32,
                                      num_parallel_calls=1, prefetch=10)
    model = MalwareCNN()
    model.compile(optimizer="sgd", learning_rate=0.01)
    callback = TensorBoard(log_dir=None, profile_batch=(1, steps))

    platform.drop_caches()
    fit = platform.env.process(
        model.fit(runtime, pipeline, steps_per_epoch=steps,
                  callbacks=[callback]))
    platform.env.run(until=fit)

    # 5. Read the collected profile and render the extended analysis page.
    profile = last_profile(runtime)
    analysis = runtime.input_pipeline_analysis(profile.window_start,
                                               profile.window_end)
    panel = build_plugin_data(profile, analysis, title="Quickstart profile")
    print()
    print(panel.render())
    print()
    print(f"simulated training time: {platform.env.now:.1f} s")


if __name__ == "__main__":
    main()
