#!/usr/bin/env python
"""Tool validation with the STREAM ingestion benchmark (paper Fig. 3/4).

Runs the no-compute STREAM pipeline over the (scaled) ImageNet and malware
datasets on the Greendog HDD, restarting tf-Darshan profiling every five
steps, with a dstat monitor watching the disks in the background — then
prints the two bandwidth series side by side so their agreement (the paper's
validation argument) is visible, along with the ~10x gap between the two
datasets.

Run with:  python examples/stream_validation.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.tools import format_table, mbps
from repro.workloads import run_stream_validation


def describe(name, result):
    print(f"== STREAM({name}) ==")
    print(f"steps: {result.steps}, data read: {result.total_bytes / 1e9:.2f} GB, "
          f"elapsed: {result.elapsed:.0f} s")
    rows = []
    for index, (end_time, bandwidth) in enumerate(result.tfdarshan_series):
        rows.append([index, f"{end_time:.1f} s", mbps(bandwidth)])
    print(format_table(["window", "end time", "tf-Darshan bandwidth"], rows))
    dstat_rate = result.dstat.mean_read_rate(ignore_idle=True)
    print(f"dstat mean rate  : {mbps(dstat_rate)}")
    print(f"tf-Darshan mean  : {mbps(result.mean_tfdarshan_bandwidth)}")
    print()
    return result


def main() -> None:
    imagenet = describe("ImageNet", run_stream_validation(
        "imagenet", steps=30, batch_size=128, threads=16, scale=0.04, seed=0))
    malware = describe("Malware", run_stream_validation(
        "malware", steps=15, batch_size=128, threads=16, scale=0.2, seed=0))
    ratio = malware.overall_bandwidth / imagenet.overall_bandwidth
    print(f"STREAM(Malware) / STREAM(ImageNet) bandwidth ratio: {ratio:.1f}x "
          f"(paper: ~10x)")


if __name__ == "__main__":
    main()
