#!/usr/bin/env python
"""Checkpoint I/O on the STDIO layer (paper Section IV-D, Fig. 6).

Trains the image-classification model for ten steps, writing a checkpoint
after every step, and shows that Darshan's STDIO module captures the
checkpoint traffic (about 1 400 ``fwrite`` calls for ten AlexNet
checkpoints) while the POSIX module keeps seeing only the dataset reads.

Run with:  python examples/checkpoint_stdio.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.tools import format_table, mib
from repro.workloads import run_checkpoint_case


def main() -> None:
    result = run_checkpoint_case(steps=10, batch_size=64, scale=0.01,
                                 checkpoint_every=1, seed=0)
    profile = result.io_profile

    print("tf-Darshan view of a run with per-step checkpoints")
    print("---------------------------------------------------")
    rows = [
        ["POSIX opens (dataset reads)", profile.posix_opens],
        ["POSIX reads", profile.posix_reads],
        ["POSIX bytes read", mib(profile.posix_bytes_read)],
        ["STDIO opens (checkpoint files)", profile.stdio_opens],
        ["STDIO fwrite calls", profile.stdio_writes],
        ["STDIO bytes written", mib(profile.stdio_bytes_written)],
    ]
    print(format_table(["counter", "value"], rows))
    print()
    print(f"checkpoints written           : 10 (one per step)")
    print(f"fwrite calls (callback total) : {result.checkpoint_fwrites}")
    print(f"paper's observation           : ~1400 fwrite calls on the STDIO layer")


if __name__ == "__main__":
    main()
