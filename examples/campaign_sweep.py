#!/usr/bin/env python
"""Tour of the experiment-campaign layer, from one process to a worker fleet.

Part 1 expands a two-axis sweep (input-pipeline threads × dataset scale) of
the ImageNet case study into jobs, runs them in parallel across worker
processes with content-hash caching, and prints the table- and
figure-shaped aggregates the benchmark harnesses consume.

Part 2 farms a *platform-parameter* grid — OST counts × page-cache sizes ×
device bandwidths — out to a fleet of distributed worker processes through
the durable work queue (`repro.campaign.dist`): jobs are scheduled
longest-estimated-first by the learned cost model, workers deduplicate
against the shared cache, and the aggregate is bit-identical to a serial
run.  Pass ``--full`` to widen the grid to 105 jobs (the ROADMAP's
"100+-job grids are cheap to express" demonstration), ``--workers N`` to
size the fleet.

Run with:  python examples/campaign_sweep.py [--full] [--workers N]
Run it twice: the second invocation is served entirely from the cache.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.campaign import (
    AutoscalePolicy,
    DistributedExecutor,
    MultiprocessingExecutor,
    ResultCache,
    SweepSpec,
    run_campaign,
)
from repro.tools import format_table, mbps
from repro.workloads import platform_grid_spec

CACHE_DIR = os.path.expanduser("~/.cache/repro-examples")


def imagenet_sweep(cache: ResultCache) -> None:
    spec = SweepSpec(
        name="imagenet-threads-x-scale",
        case="imagenet",
        base={"batch_size": 128, "profile": "epoch"},
        grid={
            "threads": [1, 4, 28],
            "scale": [0.01, 0.02],
        },
        seed=1,
    )
    print(f"sweep {spec.name!r}: {spec.job_count} jobs "
          f"over axes {spec.axes()}  (fingerprint {spec.fingerprint()})")

    sweep = run_campaign(spec,
                         executor=MultiprocessingExecutor(),
                         cache=cache,
                         progress=lambda line: print(f"  {line}"))

    print()
    header = ["threads", "scale", "POSIX bandwidth", "fit time", "input-bound"]
    rows = [[row["threads"], row["scale"], mbps(row["posix_bandwidth"]),
             f"{row['fit_time']:.0f} s", f"{row['input_percent']:.0f} %"]
            for row in sweep.rows()]
    print(format_table(header, rows))

    print("\nfigure shape — bandwidth vs threads at scale 0.02:")
    xs, ys = sweep.series("threads", "posix_bandwidth", where={"scale": 0.02})
    for x, y in zip(xs, ys):
        bar = "#" * max(1, int(y / 1e6))
        print(f"  {x:>3} threads  {bar}  {mbps(y)}")

    best = sweep.best("fit_time", minimize=True, where={"scale": 0.02})
    print(f"\nfastest epoch at scale 0.02: {best.params['threads']} threads "
          f"({best.metrics['fit_time']:.0f} simulated seconds)")


def platform_fleet_sweep(cache: ResultCache, workers: int, full: bool,
                         autoscale: bool = False) -> None:
    if full:
        spec = platform_grid_spec(
            osts=(1, 2, 4, 8, 16),
            page_cache_gib=(0.03125, 0.25, 8.0),
            bandwidth_scales=(0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0),
            seed=7)
    else:
        spec = platform_grid_spec(seed=7)
    fleet = (f"autoscaled fleet (<= {workers} workers)" if autoscale
             else f"{workers} workers")
    print(f"\nsweep {spec.name!r}: {spec.job_count} jobs over axes "
          f"{spec.axes()} — distributing across {fleet}")

    policy = (AutoscalePolicy(min_workers=1, max_workers=workers,
                              jobs_per_worker=4.0, backlog_seconds=30.0)
              if autoscale else None)
    executor = DistributedExecutor(workers=workers, cache=cache,
                                   autoscale=policy,
                                   progress=lambda line: print(f"  {line}"))
    sweep = run_campaign(spec, executor=executor, cache=cache,
                         progress=lambda line: print(f"  {line}"))
    assert sweep.ok, sweep.failures

    print("\nfigure shape — cold read bandwidth vs OST count "
          "(1x device bandwidth, 256 MiB page cache):")
    xs, ys = sweep.series("n_osts", "cold_bandwidth",
                          where={"bandwidth_scale": 1.0,
                                 "page_cache_gib": 0.25})
    for x, y in zip(xs, ys):
        bar = "#" * max(1, int(y / 1e8))
        print(f"  {x:>3} OSTs  {bar}  {mbps(y)}")

    print("\nwarm-pass speedup vs page-cache size (4 OSTs, 1x bandwidth):")
    xs, ys = sweep.series("page_cache_gib", "warm_speedup",
                          where={"n_osts": 4, "bandwidth_scale": 1.0})
    for x, y in zip(xs, ys):
        print(f"  {x:>8.5f} GiB  {y:5.1f}x")

    meta = sweep.meta.get("cache", {})
    print(f"\norchestrator cache probes: {meta.get('hits', 0)} hits / "
          f"{meta.get('misses', 0)} misses "
          f"-> rerun this script to see full hits")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--full", action="store_true",
                        help="widen the platform grid to 105 jobs")
    parser.add_argument("--workers", type=int, default=3,
                        help="distributed worker processes (default 3); "
                             "the autoscale ceiling with --autoscale")
    parser.add_argument("--autoscale", action="store_true",
                        help="size the fleet from queue depth and cost "
                             "backlog instead of spawning a fixed count")
    parser.add_argument("--skip-imagenet", action="store_true",
                        help="run only the distributed platform grid")
    args = parser.parse_args()

    cache = ResultCache(CACHE_DIR)
    if not args.skip_imagenet:
        imagenet_sweep(cache)
    platform_fleet_sweep(cache, workers=args.workers, full=args.full,
                         autoscale=args.autoscale)
    print(f"cache: {cache.stats()}")
    print("see examples/http_fleet.py for the HTTP-broker topology "
          "(workers without a shared filesystem)")


if __name__ == "__main__":
    main()
