#!/usr/bin/env python
"""Tour of the experiment-campaign layer on the paper's evaluation grid.

Expands a two-axis sweep (input-pipeline threads × dataset scale) of the
ImageNet case study into jobs, runs them in parallel across worker
processes with content-hash caching, and prints the table- and
figure-shaped aggregates the benchmark harnesses consume.  Run it twice:
the second invocation is served entirely from the cache.

Run with:  python examples/campaign_sweep.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.campaign import (
    MultiprocessingExecutor,
    ResultCache,
    SweepSpec,
    run_campaign,
)
from repro.tools import format_table, mbps

CACHE_DIR = os.path.expanduser("~/.cache/repro-examples")


def main() -> None:
    spec = SweepSpec(
        name="imagenet-threads-x-scale",
        case="imagenet",
        base={"batch_size": 128, "profile": "epoch"},
        grid={
            "threads": [1, 4, 28],
            "scale": [0.01, 0.02],
        },
        seed=1,
    )
    print(f"sweep {spec.name!r}: {spec.job_count} jobs "
          f"over axes {spec.axes()}  (fingerprint {spec.fingerprint()})")

    cache = ResultCache(CACHE_DIR)
    sweep = run_campaign(spec,
                         executor=MultiprocessingExecutor(),
                         cache=cache,
                         progress=lambda line: print(f"  {line}"))

    print()
    header = ["threads", "scale", "POSIX bandwidth", "fit time", "input-bound"]
    rows = [[row["threads"], row["scale"], mbps(row["posix_bandwidth"]),
             f"{row['fit_time']:.0f} s", f"{row['input_percent']:.0f} %"]
            for row in sweep.rows()]
    print(format_table(header, rows))

    print("\nfigure shape — bandwidth vs threads at scale 0.02:")
    xs, ys = sweep.series("threads", "posix_bandwidth", where={"scale": 0.02})
    for x, y in zip(xs, ys):
        bar = "#" * max(1, int(y / 1e6))
        print(f"  {x:>3} threads  {bar}  {mbps(y)}")

    best = sweep.best("fit_time", minimize=True, where={"scale": 0.02})
    print(f"\nfastest epoch at scale 0.02: {best.params['threads']} threads "
          f"({best.metrics['fit_time']:.0f} simulated seconds)")
    print(f"cache: {cache.stats()} -> rerun this script to see full hits")


if __name__ == "__main__":
    main()
