#!/usr/bin/env python
"""The broker topology end to end, in one process.

This demo stands up the whole "campaigns past a shared filesystem" stack
from docs/cookbook.md:

1. an HTTP queue broker (`repro.campaign.dist.server`) with a disk-backed
   store, as you would run on a queue host;
2. an autoscaled `DistributedExecutor` pointed at the broker *URL* — the
   worker processes it spawns talk to the queue **and the result cache**
   purely over HTTP (`--queue`/`--cache` the same broker), exactly like
   workers on other machines would: no shared filesystem anywhere;
3. a mid-flight `snapshot_campaign` poll over the same URL, showing a
   half-drained grid aggregating early;
4. the serial==distributed fingerprint check, proving the transport hop
   changed nothing about the results — plus a warm re-run served entirely
   from the broker-hosted cache.

Run with:  python examples/http_fleet.py [--jobs {12,36}] [--max-workers N]
"""

import argparse
import os
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.campaign import (
    AutoscalePolicy,
    DistributedExecutor,
    HttpTransport,
    SerialExecutor,
    WorkQueue,
    open_cache,
    run_campaign,
    snapshot_campaign,
)
from repro.campaign.dist.server import Broker
from repro.workloads import platform_grid_spec


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, choices=(12, 36), default=12,
                        help="platform-grid size (default 12)")
    parser.add_argument("--max-workers", type=int, default=3,
                        help="autoscale ceiling (default 3)")
    args = parser.parse_args()

    if args.jobs == 12:
        spec = platform_grid_spec(osts=(1, 2, 8),
                                  page_cache_gib=(0.03125, 8.0),
                                  bandwidth_scales=(0.5, 2.0),
                                  files=8, file_kib=8192, readers=4, seed=13)
    else:
        spec = platform_grid_spec(seed=13)

    with tempfile.TemporaryDirectory(prefix="repro-broker-") as state_dir:
        with Broker(data_dir=state_dir) as broker:
            print(f"broker up at {broker.url} (state: {state_dir})")

            # A status thread polls the queue over HTTP while the fleet
            # drains it — any host could run this snapshot loop.
            stop = threading.Event()

            def poll_progress():
                queue = WorkQueue(transport=HttpTransport(broker.url))
                while not stop.wait(0.5):
                    snap = snapshot_campaign(spec, queue)
                    print(f"  [snapshot] {snap.summary()}")

            policy = AutoscalePolicy(min_workers=1,
                                     max_workers=args.max_workers,
                                     jobs_per_worker=4.0,
                                     backlog_seconds=30.0,
                                     idle_timeout=1.0)
            # The result cache lives behind the same broker URL as the
            # queue: spawned workers get `--cache http://...` and
            # deduplicate with no shared filesystem at all.
            cache = open_cache(broker.url)
            executor = DistributedExecutor(transport=broker.url,
                                           autoscale=policy,
                                           cache=cache,
                                           lease_seconds=10.0,
                                           poll_interval=0.05,
                                           progress=lambda line: print(
                                               f"  {line}"))
            print(f"running {spec.job_count}-job grid through {policy!r}")
            watcher = threading.Thread(target=poll_progress, daemon=True)
            watcher.start()
            start = time.perf_counter()
            distributed = run_campaign(spec, executor=executor, cache=cache)
            elapsed = time.perf_counter() - start
            stop.set()
            watcher.join(timeout=2.0)
            assert distributed.ok, distributed.failures
            print(f"fleet drained {len(distributed)} jobs in {elapsed:.1f}s "
                  f"({executor.spawned_total} workers spawned)")

            start = time.perf_counter()
            warm = run_campaign(spec, cache=cache)
            print(f"warm re-run over the broker cache: "
                  f"{warm.cache_hits}/{len(warm)} hits in "
                  f"{time.perf_counter() - start:.2f}s "
                  f"(no shared directory, no re-execution)")
            assert warm.cache_hits == len(warm)

    print("re-running serially to verify the transport changed nothing...")
    serial = run_campaign(spec, executor=SerialExecutor())
    match = (serial.aggregate_fingerprint()
             == distributed.aggregate_fingerprint())
    print(f"serial == distributed aggregates: {match}")
    assert match

    print("\ncold-read bandwidth vs OST count (1x bandwidth):")
    xs, ys = distributed.series("n_osts", "cold_bandwidth",
                                where={"bandwidth_scale": 1.0}
                                if args.jobs == 36 else None)
    if not xs:
        xs, ys = distributed.series("n_osts", "cold_bandwidth")
    for x, y in zip(xs, ys):
        print(f"  {x:>3} OSTs  {'#' * max(1, int(y / 1e8))}  "
              f"{y / 1e6:,.0f} MB/s")


if __name__ == "__main__":
    main()
