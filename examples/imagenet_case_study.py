#!/usr/bin/env python
"""ImageNet case study (paper Section V-A, Fig. 7).

Profiles one (scaled) epoch of AlexNet/ImageNet training on the simulated
Kebnekaise node with a single input-pipeline thread, shows what tf-Darshan
reports — very low POSIX bandwidth, twice as many reads as opens, half the
reads of zero length, half neither sequential nor consecutive — asks the
threading advisor what to do, and re-runs the epoch with 28 parallel calls
to demonstrate the ~8x bandwidth improvement.

Run with:  python examples/imagenet_case_study.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.core import ThreadingAdvisor
from repro.tools import format_table, mbps
from repro.workloads import run_imagenet_case

SCALE = 0.02  # 2 560 files; raise towards 1.0 for the full 128 000-file epoch


def main() -> None:
    print("== one thread (the paper's starting point) ==")
    one = run_imagenet_case(scale=SCALE, threads=1, profile="epoch", seed=0)
    profile = one.io_profile
    print(profile.summary())
    print()
    print(f"step time waiting for input : {one.input_percent:.1f} %")
    print(f"simulated epoch time        : {one.fit_time:.0f} s")

    advisor = ThreadingAdvisor(max_threads=28)
    recommendation = advisor.recommend(profile, current_threads=1,
                                       rotational_storage=False)
    print()
    print(f"advisor: {recommendation.change} parallel calls to "
          f"{recommendation.recommended_threads} — {recommendation.reason}")

    print()
    print("== re-run with 28 parallel calls ==")
    many = run_imagenet_case(scale=SCALE, threads=28, profile="epoch", seed=0)

    rows = [
        ["POSIX bandwidth", mbps(one.posix_bandwidth), mbps(many.posix_bandwidth)],
        ["epoch time (simulated)", f"{one.fit_time:.0f} s", f"{many.fit_time:.0f} s"],
        ["reads / opens", f"{one.io_profile.reads_per_open:.2f}",
         f"{many.io_profile.reads_per_open:.2f}"],
        ["input-bound fraction", f"{one.input_percent:.1f} %",
         f"{many.input_percent:.1f} %"],
    ]
    print(format_table(["metric", "1 thread", "28 threads"], rows))
    speedup = many.posix_bandwidth / one.posix_bandwidth
    print(f"\nbandwidth improvement: {speedup:.1f}x  (paper: ~8x, 3 -> 24 MB/s)")


if __name__ == "__main__":
    main()
