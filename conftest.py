"""Pytest bootstrap: make the in-tree package importable without installation.

The repository is normally installed with ``pip install -e .`` (or
``python setup.py develop`` on machines without the ``wheel`` package), but
adding ``src/`` to ``sys.path`` here lets the tests and benchmarks run from a
plain checkout as well.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

_TESTS = os.path.join(os.path.dirname(os.path.abspath(__file__)), "tests")


def pytest_collection_modifyitems(items):
    """Everything under ``tests/`` is tier-1 (fast, gates every commit)."""
    for item in items:
        if str(item.fspath).startswith(_TESTS):
            item.add_marker(pytest.mark.tier1)
