"""Setuptools shim so `python setup.py develop` works without the wheel package."""
from setuptools import setup

setup()
