"""Setuptools configuration (kept ``python setup.py develop``-compatible).

The package lives under ``src/`` (``repro`` plus its subpackages); the
metadata below declares that layout explicitly so wheels/sdists and plain
``pip install -e .`` all pick up every subpackage — previously the shim
relied on defaults and shipped nothing.
"""

import os

from setuptools import find_packages, setup


def _version() -> str:
    scope = {}
    path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "src", "repro", "_version.py")
    with open(path, "r", encoding="utf-8") as handle:
        exec(handle.read(), scope)  # noqa: S102 - trusted in-tree file
    return scope["__version__"]


setup(
    name="repro-tfdarshan",
    version=_version(),
    description=("Simulation-based reproduction of tf-Darshan "
                 "(I/O profiling of TensorFlow training), with an "
                 "experiment-campaign layer for sweeping evaluation grids"),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.8",
    install_requires=[
        "numpy",
    ],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
    },
)
