"""Table I: capability comparison of stock Darshan vs tf-Darshan.

The table is qualitative; the benchmark demonstrates each row by exercising
the corresponding capability on a small workload: both tools use the same
POSIX/STDIO/DXT modules, both are transparent to the workload, only
tf-Darshan can start/stop and analyse at runtime, stock Darshan reports only
after the whole application finishes (its log is then analysed
post-execution), and tf-Darshan additionally exports TensorBoard data.
"""

import pytest

from benchmarks.conftest import report, run_once
from repro.darshan import DarshanLog, PreloadedDarshan
from repro.sim import Environment
from repro.storage import LocalFilesystem, StreamingDevice
from repro.posix import SimulatedOS
from repro.tfmini import TFRuntime, io_ops
from repro.tools import PaperComparison
from repro.core import TfDarshanSession, last_profile


def _platform():
    env = Environment()
    image = SimulatedOS(env)
    image.mount("/data", LocalFilesystem(
        env, StreamingDevice(env, "ssd", read_bandwidth=400e6, latency=40e-6)))
    for i in range(32):
        image.vfs.create_file(f"/data/f{i:03d}.bin", size=120_000)
    runtime = TFRuntime(env, image, cpu_cores=4, gpus=[])
    return env, image, runtime


def _exercise(tmp_path):
    results = {}

    # --- stock Darshan: preload at start, log at exit, post-hoc analysis ----
    env, image, runtime = _platform()
    darshan = PreloadedDarshan(env, image.symbols)
    darshan.install()

    def stock_workload():
        for i in range(32):
            yield from io_ops.read_file(runtime, f"/data/f{i:03d}.bin")

    env.run(until=env.process(stock_workload()))
    log_path = str(tmp_path / "stock.darshan.gz")
    darshan.finalize(log_path)
    log = DarshanLog.read(log_path)
    results["stock_modules"] = log.modules()
    results["stock_opens"] = log.module_totals("POSIX")["POSIX_OPENS"]
    results["stock_dxt"] = "DXT_POSIX" in log.dxt_records

    # --- tf-Darshan: runtime attach, in-situ analysis, TensorBoard export ---
    env, image, runtime = _platform()
    session = TfDarshanSession(runtime, logdir=str(tmp_path / "tb"))

    def tf_workload():
        # Profiling starts and stops *during* execution (runtime start/stop).
        for i in range(10):
            yield from io_ops.read_file(runtime, f"/data/f{i:03d}.bin")
        yield from session.start()
        for i in range(10, 25):
            yield from io_ops.read_file(runtime, f"/data/f{i:03d}.bin")
        window = yield from session.stop()
        for i in range(25, 32):
            yield from io_ops.read_file(runtime, f"/data/f{i:03d}.bin")
        return window

    window = env.run(until=env.process(tf_workload()))
    results["tfdarshan_window_opens"] = window.io_profile.posix_opens
    results["tfdarshan_in_situ"] = window.io_profile.posix_read_bandwidth > 0
    results["tfdarshan_exports"] = list(
        (tmp_path / "tb").glob("*")) if (tmp_path / "tb").exists() else []
    results["tfdarshan_modules"] = sorted(
        runtime._tf_darshan_attachment.core.modules)
    return results


def test_table1_feature_comparison(benchmark, tmp_path):
    results = run_once(benchmark, _exercise, tmp_path)

    comparisons = [
        PaperComparison("modules (both tools)", "POSIX, STDIO, DXT",
                        ",".join(results["tfdarshan_modules"]) + "+DXT",
                        results["stock_modules"] == ["POSIX", "STDIO"]
                        and results["stock_dxt"]),
        PaperComparison("transparent to the workload", "yes / yes", "yes / yes",
                        results["stock_opens"] == 32),
        PaperComparison("runtime start/stop", "Darshan: no, tf-Darshan: yes",
                        f"window saw {results['tfdarshan_window_opens']}/32 opens",
                        results["tfdarshan_window_opens"] == 15),
        PaperComparison("log analysis", "post-execution vs in-situ",
                        "in-situ bandwidth available",
                        results["tfdarshan_in_situ"]),
        PaperComparison("outputs", "Darshan log vs log+protobuf",
                        f"{len(results['tfdarshan_exports'])} TensorBoard files",
                        len(results["tfdarshan_exports"]) >= 3),
    ]
    report("Table I: Darshan vs tf-Darshan", comparisons)
    assert all(c.matches for c in comparisons)
