"""Micro-benchmark: the observability layer's own overhead.

The metrics registry sits on every hot path of the dist stack — each
broker request, transport op, claim and cache probe pays one or two
counter increments and a histogram observation — so its cost budget is
part of the transport throughput story.  This harness measures raw
registry ops/s (counter increments with labels, histogram observations,
timer context managers, snapshotting a populated registry) and span
recording, persists the numbers as ``BENCH_obs.json``, and asserts
floors loose enough for noisy CI hosts but tight enough that an
accidental O(n) label scan or per-op allocation storm fails the
perf-smoke leg.  The end-to-end guarantee — the *instrumented* HTTP
transport still clears the 250 cycles/s floor — lives in
``test_transport_throughput.py``, which runs in the same CI leg.
Opt-in via ``pytest -m bench``.
"""

import time

import pytest

from repro.campaign.obs import MetricsRegistry, SpanRecorder

pytestmark = pytest.mark.bench

#: Operations per timed round.
N_OPS = 50_000

#: Timed rounds; the best round is reported (standard minimum-time
#: estimate under host noise).
ROUNDS = 3


def _best_rate(fn, n=N_OPS):
    """Best ops/s for ``fn(n)`` over :data:`ROUNDS` rounds (one warmup)."""
    fn(n)  # warmup: interpreter-cold paths, series creation
    best = 0.0
    for _ in range(ROUNDS):
        start = time.perf_counter()
        fn(n)
        best = max(best, n / (time.perf_counter() - start))
    return best


@pytest.fixture(scope="module")
def rates():
    registry = MetricsRegistry()
    counter = registry.counter("bench_total")
    histogram = registry.histogram("bench_seconds")

    def inc_labelled(n):
        for i in range(n):
            counter.inc(route="/k", method="GET")

    def observe(n):
        for i in range(n):
            histogram.observe(0.0015, op="get")

    def timer(n):
        for i in range(n):
            with histogram.time(op="timed"):
                pass

    def record_spans(n):
        recorder = SpanRecorder()
        for i in range(n):
            recorder.record("run", start=float(i), end=float(i) + 0.5,
                            thread="w0")

    # Snapshot cost over a realistically-populated registry (a few
    # dozen series, like a busy broker) — per snapshot, not per op.
    wide = MetricsRegistry()
    for route in ("/k", "/list", "/batch", "/claim", "/stats", "other"):
        for method in ("GET", "PUT", "POST", "DELETE"):
            wide.counter("requests_total").inc(route=route, method=method)
            wide.histogram("seconds").observe(0.001, route=route)

    def snapshot(n):
        for i in range(n):
            wide.snapshot()

    return {
        "counter_inc_per_s": _best_rate(inc_labelled),
        "histogram_observe_per_s": _best_rate(observe),
        "timer_ctx_per_s": _best_rate(timer),
        "span_record_per_s": _best_rate(record_spans),
        "snapshot_per_s": _best_rate(snapshot, n=2_000),
    }


def test_report_and_floor_obs_rates(rates, bench_artifact):
    for name, rate in sorted(rates.items(), key=lambda kv: -kv[1]):
        print(f"\n{name:>24}: {rate:12,.0f} ops/s")
    bench_artifact("obs", rates)
    # A queue cycle at the 250 cycles/s floor has a ~4ms budget and pays
    # on the order of ten registry ops; at >=100k ops/s each op costs
    # <=10µs, keeping instrumentation under ~0.25% of a cycle.
    assert rates["counter_inc_per_s"] > 100_000.0
    assert rates["histogram_observe_per_s"] > 100_000.0
    assert rates["timer_ctx_per_s"] > 50_000.0
    assert rates["span_record_per_s"] > 50_000.0
    assert rates["snapshot_per_s"] > 200.0
