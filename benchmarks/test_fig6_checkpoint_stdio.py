"""Fig. 6: checkpoint writes captured on Darshan's STDIO layer.

Paper setup: the image classification use case trained for 10 steps with a
``ModelCheckpoint`` callback writing a checkpoint after every step, all
checkpoints kept.  TensorFlow writes checkpoints through ``fwrite``, so the
activity shows up on the STDIO module: about 1 400 fwrite calls.
"""

import pytest

from benchmarks.conftest import report, run_once
from repro.tools import PaperComparison
from repro.workloads import run_checkpoint_case

STEPS = 10


def test_fig6_checkpoint_stdio_activity(benchmark):
    result = run_once(benchmark, run_checkpoint_case, steps=STEPS,
                      batch_size=64, scale=0.01, checkpoint_every=1, seed=1)

    comparisons = [
        PaperComparison("checkpoints written", "10 (one per step)",
                        str(result.checkpoint_fwrites and STEPS),
                        result.checkpoint_fwrites > 0),
        PaperComparison("fwrite calls for 10 AlexNet checkpoints", "~1400",
                        str(result.stdio_writes),
                        1200 <= result.stdio_writes <= 1700),
        PaperComparison("checkpoint traffic appears on STDIO (not POSIX reads)",
                        "STDIO layer", f"{result.stdio_writes} STDIO writes",
                        result.stdio_writes == result.checkpoint_fwrites),
        PaperComparison("input reads unaffected",
                        "POSIX reads = 2x opens",
                        f"{result.io_profile.posix_reads} reads / "
                        f"{result.io_profile.posix_opens} opens",
                        abs(result.io_profile.posix_reads
                            - 2 * result.io_profile.posix_opens) <= 16),
    ]
    report("Fig. 6: checkpointing on the STDIO layer", comparisons)
    assert all(c.matches for c in comparisons)
