"""Fig. 8: TraceViewer shows every file read ending with a zero-length read.

The paper zooms into the tf-Darshan TraceViewer timelines for the ImageNet
training and finds that every file is consumed by one read followed by a
pread of length zero — which explains why the POSIX read count is twice the
open count.  The benchmark profiles a small ImageNet run, rebuilds the
per-file timelines and checks the same property on every timeline.
"""

import pytest

from benchmarks.conftest import report, run_once
from repro.core import DARSHAN_PLANE_NAME, zero_length_read_files
from repro.tools import PaperComparison
from repro.workloads import run_imagenet_case

SCALE = 0.01
BATCH = 128


def test_fig8_zero_length_terminal_reads(benchmark):
    result = run_once(benchmark, run_imagenet_case, scale=SCALE,
                      batch_size=BATCH, threads=2, profile="epoch", seed=1)

    # Rebuild the TraceViewer view from the collected delta.
    from repro.workloads import kebnekaise  # noqa: F401  (documentation import)
    profile = result.io_profile
    assert profile is not None

    comparisons = [
        PaperComparison("every traced file ends with a zero-length read",
                        "all files", f"{profile.zero_byte_reads} of "
                        f"{profile.posix_opens} files",
                        abs(profile.zero_byte_reads - profile.posix_opens) <= 8),
        PaperComparison("explains reads ~= 2x opens", "2x",
                        f"{profile.posix_reads / max(1, profile.posix_opens):.2f}x",
                        1.9 <= profile.posix_reads / max(1, profile.posix_opens) <= 2.1),
    ]
    report("Fig. 8: zero-length terminal reads", comparisons)
    assert all(c.matches for c in comparisons)


def test_fig8_timeline_structure(benchmark):
    """Per-file timelines: one data read then one zero-length read."""
    def run_and_inspect():
        from repro.sim import Environment
        from repro.posix import SimulatedOS
        from repro.storage import LocalFilesystem, StreamingDevice
        from repro.tfmini import TFRuntime, io_ops
        from repro.core import TfDarshanSession

        env = Environment()
        image = SimulatedOS(env)
        image.mount("/data", LocalFilesystem(
            env, StreamingDevice(env, "ssd", read_bandwidth=400e6, latency=50e-6)))
        paths = []
        for i in range(64):
            path = f"/data/img_{i:04d}.jpg"
            image.vfs.create_file(path, size=88_000)
            paths.append(path)
        runtime = TFRuntime(env, image, cpu_cores=4, gpus=[])
        session = TfDarshanSession(runtime)

        def proc():
            yield from session.start()
            for path in paths:
                yield from io_ops.read_file(runtime, path)
            yield from session.stop()

        env.run(until=env.process(proc()))
        delta = runtime.last_io_delta
        attachment = runtime._tf_darshan_attachment
        files_with_zero = zero_length_read_files(delta, attachment.core.lookup_name)
        timelines = {}
        for record_id, segments in delta.dxt_posix.items():
            reads = [s for s in segments if s.op == "read"]
            timelines[record_id] = [s.length for s in reads]
        return paths, files_with_zero, timelines

    paths, files_with_zero, timelines = run_once(benchmark, run_and_inspect)
    assert sorted(files_with_zero) == sorted(paths)
    for lengths in timelines.values():
        assert len(lengths) == 2
        assert lengths[0] == 88_000
        assert lengths[1] == 0
