"""Platform-parameter grid: 105 jobs farmed out to a distributed fleet.

The ROADMAP's "larger grids" item: now that campaigns make 100+-point
grids cheap to express and cache, sweep the *platform* itself — OST counts
× page-cache sizes × device bandwidths (5 × 3 × 7 = 105 configurations) —
and drain the grid through the durable work queue with a fleet of worker
processes (`repro.campaign.dist`).  The assertions pin the physics every
axis exists to expose:

* more OSTs never lower cold read bandwidth (parallel object storage);
* faster devices are strictly faster end-to-end until another resource
  (MDS, network, reader count) binds;
* a page cache smaller than the corpus forces evictions and a slow warm
  pass; one larger than the corpus serves the warm pass from DRAM.

The determinism contract (aggregates independent of the executor) for this
grid is asserted at tier-1 scale in ``tests/campaign/test_dist.py``; this
harness demonstrates fleet scale.
"""

import os

import pytest

from benchmarks.conftest import report, run_once
from repro.campaign import DistributedExecutor, run_campaign
from repro.tools import PaperComparison, mbps
from repro.workloads import platform_grid_spec

OSTS = (1, 2, 4, 8, 16)
CACHES_GIB = (0.03125, 0.25, 8.0)
BANDWIDTH_SCALES = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0)


def _fleet_size() -> int:
    return max(2, min(4, (os.cpu_count() or 2) - 1))


def _run_grid(tmp_path):
    spec = platform_grid_spec(osts=OSTS, page_cache_gib=CACHES_GIB,
                              bandwidth_scales=BANDWIDTH_SCALES, seed=7)
    assert spec.job_count == 105
    executor = DistributedExecutor(queue_dir=tmp_path / "queue",
                                   workers=_fleet_size(), timeout=600.0)
    result = run_campaign(spec, executor=executor)
    assert result.ok, result.failures
    return result


def test_platform_grid_across_worker_fleet(benchmark, tmp_path):
    sweep = run_once(benchmark, _run_grid, tmp_path)
    assert len(sweep) == 105

    mid = {"page_cache_gib": 0.25, "bandwidth_scale": 1.0}
    xs, cold_bw = sweep.series("n_osts", "cold_bandwidth", where=mid)
    assert list(xs) == sorted(OSTS)

    _, bw_by_scale = sweep.series("bandwidth_scale", "cold_bandwidth",
                                  where={"n_osts": 4, "page_cache_gib": 0.25})
    small_cache = sweep.one({"n_osts": 4, "bandwidth_scale": 1.0,
                             "page_cache_gib": 0.03125}).metrics
    big_cache = sweep.one({"n_osts": 4, "bandwidth_scale": 1.0,
                           "page_cache_gib": 8.0}).metrics

    comparisons = [
        PaperComparison("105-job grid drains across the fleet",
                        "105 results", str(len(sweep)), len(sweep) == 105),
        PaperComparison("more OSTs never lower cold bandwidth",
                        "nondecreasing (5% tolerance)",
                        " -> ".join(mbps(y) for y in cold_bw),
                        all(b >= a * 0.95
                            for a, b in zip(cold_bw, cold_bw[1:]))),
        PaperComparison("1 -> 16 OSTs raises cold bandwidth",
                        "> 1.2x", f"{cold_bw[-1] / cold_bw[0]:.2f}x",
                        cold_bw[-1] > 1.2 * cold_bw[0]),
        PaperComparison("faster devices are strictly faster",
                        "increasing in bandwidth_scale",
                        " -> ".join(mbps(y) for y in bw_by_scale),
                        all(b > a for a, b in zip(bw_by_scale,
                                                  bw_by_scale[1:]))),
        PaperComparison("small page cache evicts during the pass",
                        "> 0 evictions",
                        str(int(small_cache["cache_evictions"])),
                        small_cache["cache_evictions"] > 0),
        PaperComparison("large page cache serves the warm pass from DRAM",
                        "no evictions, >= 3x the small-cache speedup",
                        f"{big_cache['warm_speedup']:.1f}x vs "
                        f"{small_cache['warm_speedup']:.1f}x",
                        big_cache["cache_evictions"] == 0
                        and big_cache["warm_speedup"]
                        >= 3.0 * small_cache["warm_speedup"]),
    ]
    report(f"Platform grid: 105 jobs over a {_fleet_size()}-worker fleet",
           comparisons)
    assert all(c.matches for c in comparisons)
