"""Micro-benchmark: event throughput of the optimized kernel vs the seed.

Measures events/second on churn workloads — rapid scheduling turnover with
little work per event, the regime where scheduler overhead dominates — on
both the production kernel (:mod:`repro.sim`) and the frozen seed kernel
(:mod:`repro.sim.seedref`), in the same process back-to-back so machine
noise hits both sides alike.

The asserted workload is *immediate churn*: cooperative zero-delay yields
and event handoffs, the event mix the resource/store/bandwidth layers
generate (every transfer completion, queue handoff and page-cache hit is a
``succeed`` at the current timestamp).  This is precisely what the
immediate-event deque fast path targets, and the acceptance bar is >=2x
over the seed scheduler on a 100k-event run.  Timer-wheel churn (strictly
positive delays, pure heap traffic) is reported alongside: it improves too
(``__slots__``, inlined constructors), but its floor is the C heap and the
generator protocol, so no 2x is claimed or asserted there.
"""

import time

import pytest

import repro.sim as optimized
from repro.sim import seedref

pytestmark = pytest.mark.tier1

#: Total events in the asserted churn run (acceptance: 100k events).
N_PROCS = 100
N_ITERS = 1000


def _immediate_churn(kernel):
    """100k-event churn of zero-delay yields and succeed-driven handoffs."""
    env = kernel.Environment()

    def yielder():
        timeout = env.timeout
        for _ in range(N_ITERS):
            yield timeout(0)

    def handoff():
        event = env.event
        for _ in range(N_ITERS):
            ev = event()
            ev.succeed()
            yield ev

    for i in range(N_PROCS):
        env.process(yielder() if i % 4 else handoff())
    start = time.perf_counter()
    env.run()
    return N_PROCS * N_ITERS, time.perf_counter() - start


def _timer_churn(kernel):
    """100k-event churn of strictly-future timeouts (pure heap traffic)."""
    env = kernel.Environment()

    def sleeper(delay):
        timeout = env.timeout
        for _ in range(N_ITERS):
            yield timeout(delay)

    for i in range(N_PROCS):
        env.process(sleeper(0.001 + i * 1e-6))
    start = time.perf_counter()
    env.run()
    return N_PROCS * N_ITERS, time.perf_counter() - start


def _measure(workload, rounds=5):
    """Best events/second for each kernel, alternating round by round.

    Alternation plus a pre-round collect with the collector paused during
    the timed region keeps host noise (GC pauses, turbo/thermal drift,
    neighbouring pytest processes) from landing on one kernel only —
    best-of-N then discards whatever noise remains.
    """
    import gc

    best = {"seed": float("inf"), "optimized": float("inf")}
    events = {"seed": 0, "optimized": 0}
    for _ in range(rounds):
        for name, kernel in (("seed", seedref), ("optimized", optimized)):
            gc.collect()
            gc.disable()
            try:
                n, elapsed = workload(kernel)
            finally:
                gc.enable()
            events[name] = n
            best[name] = min(best[name], elapsed)
    return {name: events[name] / best[name] for name in best}


@pytest.fixture(scope="module")
def throughput():
    return {
        "immediate": _measure(_immediate_churn),
        "timer": _measure(_timer_churn),
    }


def test_immediate_churn_speedup_at_least_2x(throughput):
    rates = throughput["immediate"]
    speedup = rates["optimized"] / rates["seed"]
    if speedup < 2.0:
        # A heavily loaded host can compress the gap; one longer, calmer
        # remeasure before declaring the optimization regressed.
        rates = _measure(_immediate_churn, rounds=9)
        speedup = rates["optimized"] / rates["seed"]
    print(f"\nimmediate churn: seed {rates['seed']:,.0f} ev/s, "
          f"optimized {rates['optimized']:,.0f} ev/s -> {speedup:.2f}x")
    assert speedup >= 2.0, (
        f"expected >=2x event throughput on the immediate-churn workload, "
        f"got {speedup:.2f}x")


def test_timer_churn_does_not_regress(throughput):
    rates = throughput["timer"]
    speedup = rates["optimized"] / rates["seed"]
    print(f"\ntimer churn: seed {rates['seed']:,.0f} ev/s, "
          f"optimized {rates['optimized']:,.0f} ev/s -> {speedup:.2f}x")
    # Heap-bound traffic must at minimum not get slower; in practice the
    # slots/inlining work buys ~1.3-1.4x.
    assert speedup >= 1.0


def test_both_kernels_agree_on_the_churn_schedule():
    """The benchmark is only meaningful if both kernels do the same work."""
    def trace(kernel):
        env = kernel.Environment()
        log = []

        def proc(pid):
            for i in range(50):
                yield env.timeout(0 if (pid + i) % 3 else 0.5)
                log.append((env.now, pid, i))

        for pid in range(5):
            env.process(proc(pid))
        env.run()
        return env.now, log

    assert trace(optimized) == trace(seedref)
