"""Micro-benchmark: event throughput of the optimized kernel vs the seed.

Measures events/second on churn workloads — rapid scheduling turnover with
little work per event, the regime where scheduler overhead dominates — on
both the production kernel (:mod:`repro.sim`) and the frozen seed kernel
(:mod:`repro.sim.seedref`), in the same process back-to-back so machine
noise hits both sides alike.

Three workloads, one per scheduling structure:

* *immediate churn* — cooperative zero-delay yields and event handoffs,
  the event mix the resource/store/bandwidth layers generate (every
  transfer completion, queue handoff and page-cache hit is a ``succeed``
  at the current timestamp).  This is what the immediate-event deque fast
  path targets; the tier-1 acceptance bar is >=2x over the seed scheduler
  on a 100k-event run.
* *timer churn* — strictly-future timeouts from a small process set, pure
  timer-wheel traffic.  Tier-1 asserts it does not regress; the wheel in
  practice buys ~1.5x (its floor is the generator protocol and the event
  constructors, not the container).
* *timer fleet churn* — the timeout-heavy workload: thousands of timers
  pending at once, which is the regime campaign jobs actually run in
  (every in-flight I/O, device service and profiler sampling interval is
  a pending ``Timeout``).  The calendar-queue wheel keeps push/pop O(1)
  where the seed heap pays O(log n); the floor-gated bar is >=1.5x and it
  is enforced in the perf-smoke CI leg alongside the other ``BENCH_*``
  floors.

The measured rates are persisted to ``BENCH_kernel.json`` (ops/s + git
sha + timestamp, committed like the transport/cache/obs artifacts) so the
kernel's perf trajectory is tracked across PRs.
"""

import time

import pytest

import repro.sim as optimized
from repro.sim import seedref

#: Total events in each asserted churn run (acceptance: 100k events).
N_PROCS = 100
N_ITERS = 1000

#: The timeout-heavy fleet: many pending timers at once.
FLEET_PROCS = 4000
FLEET_ITERS = 25


def _immediate_churn(kernel):
    """100k-event churn of zero-delay yields and succeed-driven handoffs."""
    env = kernel.Environment()

    def yielder():
        timeout = env.timeout
        for _ in range(N_ITERS):
            yield timeout(0)

    def handoff():
        event = env.event
        for _ in range(N_ITERS):
            ev = event()
            ev.succeed()
            yield ev

    for i in range(N_PROCS):
        env.process(yielder() if i % 4 else handoff())
    start = time.perf_counter()
    env.run()
    return N_PROCS * N_ITERS, time.perf_counter() - start


def _timer_churn(kernel):
    """100k-event churn of strictly-future timeouts (100 pending timers)."""
    env = kernel.Environment()

    def sleeper(delay):
        timeout = env.timeout
        for _ in range(N_ITERS):
            yield timeout(delay)

    for i in range(N_PROCS):
        env.process(sleeper(0.001 + i * 1e-6))
    start = time.perf_counter()
    env.run()
    return N_PROCS * N_ITERS, time.perf_counter() - start


def _timer_fleet_churn(kernel):
    """100k-event churn with 4000 concurrently pending timers."""
    env = kernel.Environment()

    def sleeper(delay):
        timeout = env.timeout
        for _ in range(FLEET_ITERS):
            yield timeout(delay)

    for i in range(FLEET_PROCS):
        env.process(sleeper(0.001 + i * 1e-6))
    start = time.perf_counter()
    env.run()
    return FLEET_PROCS * FLEET_ITERS, time.perf_counter() - start


def _measure(workload, rounds=5):
    """Best events/second for each kernel, alternating round by round.

    Alternation plus a pre-round collect with the collector paused during
    the timed region keeps host noise (GC pauses, turbo/thermal drift,
    neighbouring pytest processes) from landing on one kernel only —
    best-of-N then discards whatever noise remains.
    """
    import gc

    best = {"seed": float("inf"), "optimized": float("inf")}
    events = {"seed": 0, "optimized": 0}
    for _ in range(rounds):
        for name, kernel in (("seed", seedref), ("optimized", optimized)):
            gc.collect()
            gc.disable()
            try:
                n, elapsed = workload(kernel)
            finally:
                gc.enable()
            events[name] = n
            best[name] = min(best[name], elapsed)
    return {name: events[name] / best[name] for name in best}


@pytest.fixture(scope="module")
def throughput():
    return {
        "immediate": _measure(_immediate_churn),
        "timer": _measure(_timer_churn),
        "timer_fleet": _measure(_timer_fleet_churn),
    }


@pytest.mark.tier1
def test_immediate_churn_speedup_at_least_2x(throughput):
    rates = throughput["immediate"]
    speedup = rates["optimized"] / rates["seed"]
    if speedup < 2.0:
        # A heavily loaded host can compress the gap; one longer, calmer
        # remeasure before declaring the optimization regressed.
        rates = _measure(_immediate_churn, rounds=9)
        throughput["immediate"] = rates
        speedup = rates["optimized"] / rates["seed"]
    print(f"\nimmediate churn: seed {rates['seed']:,.0f} ev/s, "
          f"optimized {rates['optimized']:,.0f} ev/s -> {speedup:.2f}x")
    assert speedup >= 2.0, (
        f"expected >=2x event throughput on the immediate-churn workload, "
        f"got {speedup:.2f}x")


@pytest.mark.tier1
def test_timer_churn_does_not_regress(throughput):
    rates = throughput["timer"]
    speedup = rates["optimized"] / rates["seed"]
    print(f"\ntimer churn: seed {rates['seed']:,.0f} ev/s, "
          f"optimized {rates['optimized']:,.0f} ev/s -> {speedup:.2f}x")
    # Heap-bound traffic at small pending counts must at minimum not get
    # slower; in practice the timer wheel buys ~1.5x here.  The >=1.5x
    # floor proper is asserted on the fleet workload below (perf-smoke
    # leg), where the pending-timer population matches real campaign jobs
    # and the ratio is less noise-sensitive.
    assert speedup >= 1.0


def test_timer_fleet_speedup_floor_and_artifact(throughput, bench_artifact):
    """Floor-gate the timeout-heavy workload and persist BENCH_kernel.json.

    Auto-marked ``bench`` (no tier1 marker), so it runs in the perf-smoke
    CI leg with the other BENCH floors rather than on every tier-1 run.
    """
    rates = throughput["timer_fleet"]
    speedup = rates["optimized"] / rates["seed"]
    if speedup < 1.5:
        rates = _measure(_timer_fleet_churn, rounds=9)
        throughput["timer_fleet"] = rates
        speedup = rates["optimized"] / rates["seed"]
    print(f"\ntimer fleet churn ({FLEET_PROCS} pending): "
          f"seed {rates['seed']:,.0f} ev/s, "
          f"optimized {rates['optimized']:,.0f} ev/s -> {speedup:.2f}x")

    results = {}
    for workload, pair in throughput.items():
        results[f"{workload}_seed_events_per_s"] = pair["seed"]
        results[f"{workload}_optimized_events_per_s"] = pair["optimized"]
        results[f"{workload}_speedup_x"] = pair["optimized"] / pair["seed"]
    bench_artifact("kernel", results)

    assert speedup >= 1.5, (
        f"expected >=1.5x event throughput on the timeout-heavy fleet "
        f"workload, got {speedup:.2f}x")


@pytest.mark.tier1
def test_both_kernels_agree_on_the_churn_schedule():
    """The benchmark is only meaningful if both kernels do the same work."""
    def trace(kernel):
        env = kernel.Environment()
        log = []

        def proc(pid):
            for i in range(50):
                yield env.timeout(0 if (pid + i) % 3 else 0.5)
                log.append((env.now, pid, i))

        for pid in range(5):
            env.process(proc(pid))
        env.run()
        return env.now, log

    assert trace(optimized) == trace(seedref)
