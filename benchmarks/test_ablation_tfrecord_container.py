"""Ablation A4: TFRecord-style containers vs individual small files.

The discussion section points out that "one way to improve bandwidth
performance is to use data containers such as TFRecord that contains
multiple data samples".  This ablation packs the (scaled) ImageNet corpus
into large container files read sequentially in 1 MB segments and compares
the achieved ingestion bandwidth against reading the individual small files,
on the same Lustre platform and thread count.
"""

import pytest

from benchmarks.conftest import report, run_once
from repro.core import TfDarshanSession
from repro.tfmini import Dataset, OutOfRangeError, io_ops
from repro.tools import PaperComparison
from repro.workloads.datasets import build_imagenet_dataset
from repro.workloads.platforms import kebnekaise

MIB = 1 << 20
SCALE = 0.02
SAMPLES_PER_SHARD = 1024


def read_fn(runtime, path):
    data = yield from io_ops.read_file(runtime, path)
    return data


def _measure(container: bool):
    platform = kebnekaise()
    runtime = platform.runtime
    dataset = build_imagenet_dataset(platform.os.vfs,
                                     root=f"{platform.data_root}/imagenet",
                                     scale=SCALE, seed=1)
    if container:
        # Pack samples into TFRecord-like shards laid out on the same tier.
        n_shards = max(1, dataset.file_count // SAMPLES_PER_SHARD)
        shard_size = dataset.total_bytes // n_shards
        paths = []
        for i in range(n_shards):
            path = f"{platform.data_root}/tfrecords/shard-{i:05d}.tfrecord"
            platform.os.vfs.create_file(path, size=shard_size)
            paths.append(path)
        total_bytes = shard_size * n_shards
    else:
        paths = dataset.paths
        total_bytes = dataset.total_bytes

    pipeline = (Dataset.from_list(paths)
                .map(read_fn, num_parallel_calls=4)
                .batch(8).prefetch(4))
    session = TfDarshanSession(runtime)

    def proc():
        yield from session.start()
        iterator = pipeline.make_iterator(runtime)
        while True:
            try:
                yield from iterator.get_next()
            except OutOfRangeError:
                break
        window = yield from session.stop()
        iterator.cancel()
        return window

    window = platform.env.run(until=platform.env.process(proc()))
    return window.io_profile, total_bytes


def _run_both():
    individual, _ = _measure(container=False)
    containered, _ = _measure(container=True)
    return individual, containered


def test_ablation_tfrecord_containers(benchmark):
    individual, containered = run_once(benchmark, _run_both)

    speedup = containered.posix_read_bandwidth / individual.posix_read_bandwidth
    comparisons = [
        PaperComparison("containers avoid per-sample opens",
                        "few opens instead of one per sample",
                        f"{containered.posix_opens} vs {individual.posix_opens}",
                        containered.posix_opens < individual.posix_opens / 100),
        PaperComparison("containers increase read sizes",
                        "1 MB segments instead of ~90 KB files",
                        f"top bucket {max(containered.read_size_histogram, key=containered.read_size_histogram.get)}",
                        containered.read_size_histogram.get("100K_1M", 0)
                        > containered.read_size_histogram.get("10K_100K", 0)),
        PaperComparison("container bandwidth beats small files",
                        "higher bandwidth", f"x{speedup:.1f}",
                        speedup > 2.0),
    ]
    report("Ablation A4: TFRecord-style containers", comparisons)
    assert all(c.matches for c in comparisons)
