"""Fig. 3: STREAM(ImageNet) bandwidth — tf-Darshan vs dstat.

Paper setup: ImageNet dataset on the Greendog HDD, batch size 128, 16 I/O
threads, prefetch 10, 100 steps, profiling restarted every 5 steps.  The
reported bandwidth hovers around 5-15 MiB/s and the tf-Darshan samples track
the dstat line closely.  The benchmark runs a scaled version (fewer steps)
and asserts (a) agreement between tf-Darshan and dstat, and (b) the low
absolute bandwidth characteristic of a small-file workload on a hard disk.
"""

import pytest

from benchmarks.conftest import report, run_once
from repro.tools import PaperComparison, mbps, within_factor
from repro.workloads import run_stream_validation

STEPS = 40
SCALE = 0.05  # 6 400 files available; 40 x 128 = 5 120 consumed


def test_fig3_stream_imagenet_bandwidth(benchmark):
    result = run_once(benchmark, run_stream_validation, case="imagenet",
                      steps=STEPS, batch_size=128, threads=16, scale=SCALE,
                      seed=1)

    dstat_rate = result.dstat.mean_read_rate(ignore_idle=True)
    tfdarshan_rate = result.mean_tfdarshan_bandwidth
    comparisons = [
        PaperComparison("number of tf-Darshan samples (1 per 5 steps)",
                        str(STEPS // 5), str(len(result.tfdarshan_series)),
                        len(result.tfdarshan_series) == STEPS // 5),
        PaperComparison("tf-Darshan tracks dstat", "red dots on blue line",
                        f"{mbps(tfdarshan_rate)} vs {mbps(dstat_rate)}",
                        within_factor(tfdarshan_rate, dstat_rate, 1.4)),
        PaperComparison("bandwidth magnitude", "~5-15 MiB/s",
                        mbps(result.overall_bandwidth),
                        3e6 < result.overall_bandwidth < 20e6),
    ]
    report("Fig. 3: STREAM(ImageNet) bandwidth", comparisons)
    assert all(c.matches for c in comparisons)
    # Every individual tf-Darshan window agrees with the overall rate within
    # a factor of a few (the paper's samples fluctuate with the dstat line).
    for _, bandwidth in result.tfdarshan_series:
        assert within_factor(bandwidth, result.overall_bandwidth, 3.0)
