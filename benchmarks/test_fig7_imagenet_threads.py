"""Fig. 7: ImageNet case study — profile with 1 thread vs 28 threads.

Paper observations (Kebnekaise, Lustre, batch 256, full-epoch profile):

* Fig. 7a (1 thread): POSIX bandwidth ~3 MB/s, ~128 K files opened, ~256 K
  POSIX reads (twice the opens), ~50 % of reads below 100 bytes, ~50 % of
  reads neither sequential nor consecutive, 96 % of step time waiting for
  input.
* Fig. 7b (28 threads): bandwidth rises to ~24 MB/s, an ~8x improvement.

The benchmark runs the same configuration at 1/20 dataset scale (6 400
files) and checks every one of those shapes, plus the absolute bandwidths
within a factor of two.  Since the campaign refactor the grid is expressed
as a :class:`~repro.campaign.spec.SweepSpec` over the ``threads`` axis and
executed through :func:`repro.campaign.run_campaign`, fanning the two
training runs out across worker processes.
"""

import pytest

from benchmarks.conftest import report, run_once
from repro.campaign import MultiprocessingExecutor, run_campaign
from repro.tools import PaperComparison, mbps, within_factor
from repro.workloads import imagenet_threads_spec

SCALE = 0.05
BATCH = 256


def _run_sweep():
    spec = imagenet_threads_spec(threads=(1, 28), scale=SCALE,
                                 batch_size=BATCH, seed=1)
    result = run_campaign(spec, executor=MultiprocessingExecutor(processes=2))
    assert result.ok, result.failures
    return result


def test_fig7_imagenet_threading(benchmark):
    sweep = run_once(benchmark, _run_sweep)
    one = sweep.one({"threads": 1}).metrics
    many = sweep.one({"threads": 28}).metrics
    expected_files = one["steps"] * BATCH

    hist = one["read_size_histogram"]
    small_reads = hist.get("0_100", 0)
    speedup = many["posix_bandwidth"] / one["posix_bandwidth"]

    comparisons = [
        PaperComparison("1 thread: POSIX bandwidth", "~3 MB/s",
                        mbps(one["posix_bandwidth"]),
                        within_factor(one["posix_bandwidth"], 3e6, 2.0)),
        PaperComparison("files opened during the epoch",
                        f"~{expected_files} (scaled from 128K)",
                        str(one["posix_opens"]),
                        within_factor(one["posix_opens"], expected_files, 1.05)),
        PaperComparison("POSIX reads ~= 2x opens", "~256K vs 128K",
                        f"{one['posix_reads']} vs {one['posix_opens']}",
                        within_factor(one["posix_reads"],
                                      2 * one["posix_opens"], 1.05)),
        PaperComparison("~50% of reads below 100 bytes", "~50 %",
                        f"{100 * small_reads / one['posix_reads']:.1f} %",
                        0.45 < small_reads / one["posix_reads"] < 0.55),
        PaperComparison("~50% of reads neither seq nor consec", "~50 %",
                        f"{100 * one['random_fraction']:.1f} %",
                        0.45 < one["random_fraction"] < 0.55),
        PaperComparison("remaining reads are 1KB-1MB", "rest of reads",
                        str(sum(hist.get(b, 0)
                                for b in ("1K_10K", "10K_100K", "100K_1M"))),
                        sum(hist.get(b, 0)
                            for b in ("1K_10K", "10K_100K", "100K_1M"))
                        == one["posix_reads"] - small_reads),
        PaperComparison("28 threads: POSIX bandwidth", "~24 MB/s",
                        mbps(many["posix_bandwidth"]),
                        within_factor(many["posix_bandwidth"], 24e6, 2.0)),
        PaperComparison("threading speedup", "~8x",
                        f"{speedup:.1f}x", 5.0 <= speedup <= 11.0),
        PaperComparison("1 thread: step time waiting for input", "~96 %",
                        f"{one['input_percent']:.1f} %",
                        one["input_percent"] >= 90.0),
        PaperComparison("still input bound with 28 threads", "input bound",
                        f"{many['input_percent']:.1f} %",
                        many["input_percent"] >= 50.0),
    ]
    report("Fig. 7: ImageNet 1 thread vs 28 threads", comparisons)
    assert all(c.matches for c in comparisons)
    assert one["fit_time"] > many["fit_time"]
