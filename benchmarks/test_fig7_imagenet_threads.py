"""Fig. 7: ImageNet case study — profile with 1 thread vs 28 threads.

Paper observations (Kebnekaise, Lustre, batch 256, full-epoch profile):

* Fig. 7a (1 thread): POSIX bandwidth ~3 MB/s, ~128 K files opened, ~256 K
  POSIX reads (twice the opens), ~50 % of reads below 100 bytes, ~50 % of
  reads neither sequential nor consecutive, 96 % of step time waiting for
  input.
* Fig. 7b (28 threads): bandwidth rises to ~24 MB/s, an ~8x improvement.

The benchmark runs the same configuration at 1/20 dataset scale (6 400
files) and checks every one of those shapes, plus the absolute bandwidths
within a factor of two.
"""

import pytest

from benchmarks.conftest import report, run_once
from repro.tools import PaperComparison, mbps, within_factor
from repro.workloads import run_imagenet_case

SCALE = 0.05
BATCH = 256


def _run_both():
    one = run_imagenet_case(scale=SCALE, batch_size=BATCH, threads=1,
                            profile="epoch", seed=1)
    many = run_imagenet_case(scale=SCALE, batch_size=BATCH, threads=28,
                             profile="epoch", seed=1)
    return one, many


def test_fig7_imagenet_threading(benchmark):
    one, many = run_once(benchmark, _run_both)
    profile = one.io_profile
    expected_files = one.steps * BATCH

    small_reads = profile.read_size_histogram.get("0_100", 0)
    pattern = profile.access_pattern
    speedup = many.posix_bandwidth / one.posix_bandwidth

    comparisons = [
        PaperComparison("1 thread: POSIX bandwidth", "~3 MB/s",
                        mbps(one.posix_bandwidth),
                        within_factor(one.posix_bandwidth, 3e6, 2.0)),
        PaperComparison("files opened during the epoch",
                        f"~{expected_files} (scaled from 128K)",
                        str(profile.posix_opens),
                        within_factor(profile.posix_opens, expected_files, 1.05)),
        PaperComparison("POSIX reads ~= 2x opens", "~256K vs 128K",
                        f"{profile.posix_reads} vs {profile.posix_opens}",
                        within_factor(profile.posix_reads,
                                      2 * profile.posix_opens, 1.05)),
        PaperComparison("~50% of reads below 100 bytes", "~50 %",
                        f"{100 * small_reads / profile.posix_reads:.1f} %",
                        0.45 < small_reads / profile.posix_reads < 0.55),
        PaperComparison("~50% of reads neither seq nor consec", "~50 %",
                        f"{100 * pattern.random_fraction:.1f} %",
                        0.45 < pattern.random_fraction < 0.55),
        PaperComparison("remaining reads are 1KB-1MB", "rest of reads",
                        str(sum(profile.read_size_histogram.get(b, 0)
                                for b in ("1K_10K", "10K_100K", "100K_1M"))),
                        sum(profile.read_size_histogram.get(b, 0)
                            for b in ("1K_10K", "10K_100K", "100K_1M"))
                        == profile.posix_reads - small_reads),
        PaperComparison("28 threads: POSIX bandwidth", "~24 MB/s",
                        mbps(many.posix_bandwidth),
                        within_factor(many.posix_bandwidth, 24e6, 2.0)),
        PaperComparison("threading speedup", "~8x",
                        f"{speedup:.1f}x", 5.0 <= speedup <= 11.0),
        PaperComparison("1 thread: step time waiting for input", "~96 %",
                        f"{one.input_percent:.1f} %",
                        one.input_percent >= 90.0),
        PaperComparison("still input bound with 28 threads", "input bound",
                        f"{many.input_percent:.1f} %",
                        many.input_percent >= 50.0),
    ]
    report("Fig. 7: ImageNet 1 thread vs 28 threads", comparisons)
    assert all(c.matches for c in comparisons)
    assert one.fit_time > many.fit_time
