"""Table II: characteristics of the datasets and test-case configurations."""

import pytest

from benchmarks.conftest import report, run_once
from repro.sim import Environment
from repro.posix import SimulatedOS
from repro.storage import LocalFilesystem, hdd
from repro.tools import PaperComparison, within_factor
from repro.workloads import build_imagenet_dataset, build_malware_dataset

MIB = 1 << 20

#: The malware corpus is generated at full scale (10 868 files); ImageNet is
#: generated at 1/10 scale and its totals compared against 1/10 of Table II.
IMAGENET_SCALE = 0.1


def _build():
    env = Environment()
    image = SimulatedOS(env)
    image.mount("/data", LocalFilesystem(env, hdd(env)))
    imagenet = build_imagenet_dataset(image.vfs, scale=IMAGENET_SCALE)
    malware = build_malware_dataset(image.vfs, scale=1.0)
    return imagenet, malware


def test_table2_dataset_characteristics(benchmark):
    imagenet, malware = run_once(benchmark, _build)

    comparisons = [
        PaperComparison("ImageNet: number of files", f"{int(128000 * IMAGENET_SCALE)}",
                        str(imagenet.file_count),
                        imagenet.file_count == int(128000 * IMAGENET_SCALE),
                        f"scale {IMAGENET_SCALE}"),
        PaperComparison("ImageNet: total size", f"~{11.6 * IMAGENET_SCALE:.2f} GB",
                        f"{imagenet.total_bytes / 1e9:.2f} GB",
                        within_factor(imagenet.total_bytes, 11.6e9 * IMAGENET_SCALE, 1.1)),
        PaperComparison("ImageNet: median size", "~88 KB",
                        f"{imagenet.median_bytes / 1e3:.0f} KB",
                        within_factor(imagenet.median_bytes, 88e3, 1.35)),
        PaperComparison("Malware: number of files", "10868",
                        str(malware.file_count), malware.file_count == 10868),
        PaperComparison("Malware: total size", "~48 GB",
                        f"{malware.total_bytes / 1e9:.1f} GB",
                        within_factor(malware.total_bytes, 48e9, 1.1)),
        PaperComparison("Malware: median size", "~4 MB",
                        f"{malware.median_bytes / 1e6:.1f} MB",
                        within_factor(malware.median_bytes, 4e6, 1.3)),
        PaperComparison("Malware: files < 2 MiB", "~40 % of files",
                        f"{100 * len(malware.files_below(2 * MIB)) / malware.file_count:.1f} %",
                        0.35 < len(malware.files_below(2 * MIB)) / malware.file_count < 0.46),
        PaperComparison("Malware: bytes < 2 MiB", "~8 % of bytes (3.7 GB)",
                        f"{100 * malware.bytes_below(2 * MIB) / malware.total_bytes:.1f} %",
                        0.05 < malware.bytes_below(2 * MIB) / malware.total_bytes < 0.11),
    ]
    report("Table II: dataset characteristics", comparisons)
    assert all(c.matches for c in comparisons)
