"""Micro-benchmark: work-queue cycle throughput across the transports.

Measures full queue cycles — enqueue, claim (conditional-create CAS),
complete (result write + retirement) — per second over each
:class:`~repro.campaign.dist.transport.QueueTransport` backend, in one
process back-to-back so machine noise hits all sides alike.

This is scheduling *overhead*, not simulation work: the numbers bound how
small a job can be before queue bookkeeping dominates.  Expected shape:
memory ≫ filesystem ≳ HTTP — server-side ``POST /claim`` plus the
one-shot ``mutate_many`` settle cut a broker cycle from ~6 round trips
to ~2, so HTTP now competes with the filesystem.  Both broker cores are
measured (``http`` = asyncio, ``http_thread`` = legacy threaded); floors
are asserted loose enough to survive CI hosts.  Opt-in via
``pytest -m bench``.
"""

import time

import pytest

from repro.campaign import SweepSpec
from repro.campaign.dist import (
    FsTransport,
    HttpTransport,
    MemoryTransport,
    WorkQueue,
)
from repro.campaign.dist.server import Broker
from repro.campaign.jobs import JobResult

pytestmark = pytest.mark.bench

#: Queue cycles per measured round.
N_JOBS = 60

#: Timed rounds per transport; the best round is reported.  Taking the
#: minimum time over repeats is the standard way to estimate the true
#: cost under host noise (CI neighbours, frequency scaling).
ROUNDS = 3


def _jobs(n):
    spec = SweepSpec(name="queue-bench", case="synthetic",
                     base={"rate": 150.0}, grid={"tasks": list(range(n))})
    return spec.expand()


def _drain(queue, jobs):
    queue.enqueue_grid(jobs)
    settled = 0
    while True:
        item = queue.claim("bench-worker")
        if item is None:
            break
        queue.complete(item, JobResult(
            job_id=item.key, case=item.job.case, params=item.job.params,
            seed=item.job.seed, metrics={"x": 1.0}, wall_time=0.001))
        settled += 1
    return settled


def _cycle_rate(transport):
    """Best full-cycle (enqueue→claim→complete) rate over ``transport``.

    Enqueueing uses the batched bulk path (``enqueue_grid``) — the way
    campaigns actually submit grids — so the measured cycle is the
    operational hot loop: batch enqueue, paginated claim scan with
    batch-probed candidates, batched settle.  An untimed warmup round
    drains first-use costs (interpreter-cold code paths, connection
    setup) so transport order in the run doesn't skew the comparison,
    then the best of :data:`ROUNDS` disjoint timed rounds is reported.
    """
    queue = WorkQueue(transport=transport, lease_seconds=60.0)
    grid = _jobs((ROUNDS + 1) * N_JOBS)
    rounds = [grid[i * N_JOBS:(i + 1) * N_JOBS] for i in range(ROUNDS + 1)]
    assert _drain(queue, rounds[0]) == N_JOBS  # warmup, untimed
    best = 0.0
    for jobs in rounds[1:]:
        start = time.perf_counter()
        settled = _drain(queue, jobs)
        elapsed = time.perf_counter() - start
        assert settled == len(jobs)
        assert queue.drained()
        best = max(best, settled / elapsed)
    return best


@pytest.fixture(scope="module")
def rates(tmp_path_factory):
    root = tmp_path_factory.mktemp("transport-bench")
    out = {"memory": _cycle_rate(MemoryTransport()),
           "fs": _cycle_rate(FsTransport(root / "fs-queue"))}
    with Broker(core="asyncio") as broker:
        out["http"] = _cycle_rate(HttpTransport(broker.url, retries=1))
    with Broker(core="thread") as broker:
        out["http_thread"] = _cycle_rate(
            HttpTransport(broker.url, retries=1))
    return out


def test_report_and_floor_cycle_rates(rates, bench_artifact):
    for name, rate in sorted(rates.items(), key=lambda kv: -kv[1]):
        print(f"\n{name:>7}: {rate:8,.0f} queue cycles/s")
    bench_artifact("transport", {
        f"{name}_cycles_per_s": rate for name, rate in rates.items()})
    # Conservative floors (the perf-smoke CI leg fails on regression
    # below them).  The HTTP floor is calibrated to the server-side
    # ``POST /claim`` + single ``mutate_many`` settle (~2 round trips
    # per cycle): the previous client-side scan measured ~560 cycles/s
    # locally and could not clear it.  Both broker cores serve /claim,
    # so both must hold the raised floor.
    assert rates["memory"] > 200.0
    assert rates["fs"] > 50.0
    assert rates["http"] > 250.0
    assert rates["http_thread"] > 250.0


def test_memory_transport_is_the_fast_path(rates):
    """The in-process store exists to make many-tiny-job fleets cheap: it
    must comfortably outpace the network hop."""
    assert rates["memory"] > rates["http"]
