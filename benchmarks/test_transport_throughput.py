"""Micro-benchmark: work-queue cycle throughput across the transports.

Measures full queue cycles — enqueue, claim (conditional-create CAS),
complete (result write + retirement) — per second over each
:class:`~repro.campaign.dist.transport.QueueTransport` backend, in one
process back-to-back so machine noise hits all sides alike.

This is scheduling *overhead*, not simulation work: the numbers bound how
small a job can be before queue bookkeeping dominates.  Expected shape:
memory ≫ filesystem ≫ HTTP (each cycle over the broker is ~10 round
trips), with the absolute floors asserted loose enough to survive CI
hosts.  Opt-in via ``pytest -m bench``.
"""

import time

import pytest

from repro.campaign import SweepSpec
from repro.campaign.dist import (
    FsTransport,
    HttpTransport,
    MemoryTransport,
    WorkQueue,
)
from repro.campaign.dist.server import Broker
from repro.campaign.jobs import JobResult

pytestmark = pytest.mark.bench

#: Queue cycles per measured round.
N_JOBS = 60


def _jobs(n):
    spec = SweepSpec(name="queue-bench", case="synthetic",
                     base={"rate": 150.0}, grid={"tasks": list(range(n))})
    return spec.expand()


def _cycle_rate(transport, jobs):
    """Full enqueue→claim→complete cycles per second over ``transport``.

    Enqueueing uses the batched bulk path (``enqueue_grid``) — the way
    campaigns actually submit grids — so the measured cycle is the
    operational hot loop: batch enqueue, paginated claim scan with
    batch-probed candidates, batched settle.
    """
    queue = WorkQueue(transport=transport, lease_seconds=60.0)
    start = time.perf_counter()
    queue.enqueue_grid(jobs)
    settled = 0
    while True:
        item = queue.claim("bench-worker")
        if item is None:
            break
        queue.complete(item, JobResult(
            job_id=item.key, case=item.job.case, params=item.job.params,
            seed=item.job.seed, metrics={"x": 1.0}, wall_time=0.001))
        settled += 1
    elapsed = time.perf_counter() - start
    assert settled == len(jobs)
    assert queue.drained()
    return settled / elapsed


@pytest.fixture(scope="module")
def rates(tmp_path_factory):
    jobs = _jobs(N_JOBS)
    root = tmp_path_factory.mktemp("transport-bench")
    out = {"memory": _cycle_rate(MemoryTransport(), jobs),
           "fs": _cycle_rate(FsTransport(root / "fs-queue"), jobs)}
    with Broker() as broker:
        out["http"] = _cycle_rate(
            HttpTransport(broker.url, retries=1), jobs)
    return out


def test_report_and_floor_cycle_rates(rates, bench_artifact):
    for name, rate in sorted(rates.items(), key=lambda kv: -kv[1]):
        print(f"\n{name:>7}: {rate:8,.0f} queue cycles/s")
    bench_artifact("transport", {
        f"{name}_cycles_per_s": rate for name, rate in rates.items()})
    # Conservative floors (the perf-smoke CI leg fails on regression
    # below them): a cycle is ~7 batched operations.  The HTTP floor is
    # calibrated to the keep-alive + /batch broker — the pre-overhaul
    # connection-per-request path measured ~80 cycles/s locally and
    # could not clear it.
    assert rates["memory"] > 200.0
    assert rates["fs"] > 50.0
    assert rates["http"] > 100.0


def test_memory_transport_is_the_fast_path(rates):
    """The in-process store exists to make many-tiny-job fleets cheap: it
    must comfortably outpace the network hop."""
    assert rates["memory"] > rates["http"]
