"""Micro-benchmark: aggregate queue throughput over a sharded fleet.

Measures full queue cycles (batch enqueue → server-side claim → batched
settle) per second driven by a small concurrent worker pool, against one
local broker and against a 2-shard ``ShardedTransport`` over two local
brokers — the apples-to-apples comparison for the horizontal-scaling
claim.  On one machine the two shards share the CPU, so the aggregate is
not expected to *double*; the floor asserts the router's scatter-gather
and per-shard claim probing keep a sharded fleet at or above the
single-broker throughput floor, i.e. sharding costs no cliff.  The
``BENCH_sharded.json`` artifact records both numbers so the trajectory
is inspectable across PRs.  Opt-in via ``pytest -m bench``.
"""

import threading
import time

import pytest

from repro.campaign import SweepSpec
from repro.campaign.dist import (
    HttpTransport,
    ShardedTransport,
    WorkQueue,
)
from repro.campaign.dist.server import Broker
from repro.campaign.jobs import JobResult

pytestmark = pytest.mark.bench

#: Queue cycles per measured round.
N_JOBS = 60

#: Timed rounds per configuration; the best round is reported.
ROUNDS = 3

#: Concurrent claimants per round — enough to keep both shards busy
#: without swamping a CI host.
WORKERS = 4


def _jobs(n):
    spec = SweepSpec(name="sharded-bench", case="synthetic",
                     base={"rate": 150.0}, grid={"tasks": list(range(n))})
    return spec.expand()


def _drain_fleet(transport, jobs):
    """Settle ``jobs`` with :data:`WORKERS` concurrent claimants; returns
    total settled.  Each thread gets its own ``WorkQueue`` over the
    shared transport, like separate worker processes would."""
    WorkQueue(transport=transport, lease_seconds=60.0).enqueue_grid(jobs)
    settled = [0] * WORKERS

    def run(index):
        queue = WorkQueue(transport=transport, lease_seconds=60.0)
        while True:
            item = queue.claim(f"bench-{index}")
            if item is None:
                return
            queue.complete(item, JobResult(
                job_id=item.key, case=item.job.case, params=item.job.params,
                seed=item.job.seed, metrics={"x": 1.0}, wall_time=0.001))
            settled[index] += 1

    threads = [threading.Thread(target=run, args=(i,))
               for i in range(WORKERS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    return sum(settled)


def _fleet_rate(transport):
    """Best aggregate cycle rate over ``transport`` (warmup + best-of)."""
    grid = _jobs((ROUNDS + 1) * N_JOBS)
    rounds = [grid[i * N_JOBS:(i + 1) * N_JOBS] for i in range(ROUNDS + 1)]
    assert _drain_fleet(transport, rounds[0]) == N_JOBS  # warmup, untimed
    best = 0.0
    for jobs in rounds[1:]:
        start = time.perf_counter()
        settled = _drain_fleet(transport, jobs)
        elapsed = time.perf_counter() - start
        assert settled == len(jobs)
        best = max(best, settled / elapsed)
    return best


@pytest.fixture(scope="module")
def rates():
    out = {}
    with Broker() as broker:
        out["single"] = _fleet_rate(
            HttpTransport(broker.url, retries=1))
    with Broker() as b1, Broker() as b2:
        router = ShardedTransport(
            [HttpTransport(b1.url, retries=1),
             HttpTransport(b2.url, retries=1)])
        out["sharded_2x"] = _fleet_rate(router)
        router.close()
    return out


def test_report_and_floor_sharded_rates(rates, bench_artifact):
    for name, rate in sorted(rates.items(), key=lambda kv: -kv[1]):
        print(f"\n{name:>10}: {rate:8,.0f} queue cycles/s "
              f"({WORKERS} claimants)")
    bench_artifact("sharded", {
        "single_cycles_per_s": rates["single"],
        "sharded_2x_cycles_per_s": rates["sharded_2x"],
        "claimants": WORKERS,
    })
    # The acceptance floor: a 2-shard fleet's aggregate must clear the
    # single-broker floor from BENCH_transport.json (250 cycles/s) —
    # the router's per-shard claim probe and scatter-gather pagination
    # must not turn horizontal scaling into a regression.
    assert rates["sharded_2x"] > 250.0
    assert rates["single"] > 250.0
