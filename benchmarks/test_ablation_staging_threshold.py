"""Ablation A3: sweep of the staging size threshold.

The paper stages files below 2 MB after inspecting the file-size and
read-size distributions, arguing that this choice minimises the space needed
on the fast tier ("one might intuitively stage the larger files ... which in
the end may not provide a big improvement").  The sweep quantifies that
trade-off: bandwidth gained per staged byte is best for small thresholds,
and staging *large* files instead consumes far more Optane capacity for a
comparable gain.

The sweep is a single campaign: one ``staging_threshold`` axis whose ``0``
point is the unstaged baseline, executed through the multiprocessing
executor so the four training runs proceed in parallel.
"""

import pytest

from benchmarks.conftest import report, run_once
from repro.campaign import MultiprocessingExecutor, run_campaign
from repro.tools import PaperComparison, format_table
from repro.workloads import staging_threshold_spec

SCALE = 0.05
BATCH = 32
MIB = 1 << 20

THRESHOLDS = (512 * 1024, 2 * MIB, 8 * MIB)


def _sweep():
    spec = staging_threshold_spec(thresholds=[0, *THRESHOLDS],
                                  scale=SCALE, batch_size=BATCH, seed=1)
    result = run_campaign(spec, executor=MultiprocessingExecutor(processes=4))
    assert result.ok, result.failures
    return result


def test_ablation_staging_threshold_sweep(benchmark):
    sweep = run_once(benchmark, _sweep)
    naive = sweep.one({"staging_threshold": 0}).metrics

    rows = []
    gains = {}
    staged_fraction = {}
    for threshold in THRESHOLDS:
        run = sweep.one({"staging_threshold": threshold}).metrics
        gain = run["posix_bandwidth"] / naive["posix_bandwidth"] - 1.0
        fraction = run["staged_bytes"] / run["dataset_bytes"]
        gains[threshold] = gain
        staged_fraction[threshold] = fraction
        efficiency = gain / fraction if fraction > 0 else 0.0
        rows.append([f"{threshold / MIB:.1f} MiB", f"{100 * fraction:.1f} %",
                     f"+{100 * gain:.1f} %", f"{efficiency:.2f}"])
    print()
    print("== Ablation A3: staging threshold sweep ==")
    print(format_table(["threshold", "staged bytes", "bandwidth gain",
                        "gain per staged fraction"], rows))

    comparisons = [
        PaperComparison("staging more helps more (monotone gain)",
                        "gain grows with threshold",
                        " <= ".join(f"{100 * gains[t]:.1f}%" for t in THRESHOLDS),
                        gains[THRESHOLDS[0]] <= gains[THRESHOLDS[1]] + 0.02
                        and gains[THRESHOLDS[1]] <= gains[THRESHOLDS[2]] + 0.02),
        PaperComparison("2 MiB stages only a small byte fraction", "~8 %",
                        f"{100 * staged_fraction[2 * MIB]:.1f} %",
                        staged_fraction[2 * MIB] < 0.15),
        PaperComparison("8 MiB needs much more fast-tier capacity",
                        "large files dominate the bytes",
                        f"{100 * staged_fraction[8 * MIB]:.1f} %",
                        staged_fraction[8 * MIB] > 3 * staged_fraction[2 * MIB]),
        PaperComparison("gain per staged byte is best at small thresholds",
                        "small files give the best return",
                        f"{gains[2 * MIB] / max(staged_fraction[2 * MIB], 1e-9):.2f} vs "
                        f"{gains[8 * MIB] / max(staged_fraction[8 * MIB], 1e-9):.2f}",
                        gains[2 * MIB] / max(staged_fraction[2 * MIB], 1e-9)
                        > gains[8 * MIB] / max(staged_fraction[8 * MIB], 1e-9)),
    ]
    report("Ablation A3: staging threshold", comparisons)
    assert all(c.matches for c in comparisons)
