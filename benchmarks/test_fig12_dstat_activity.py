"""Fig. 12: background dstat disk activity of the three malware configurations.

The paper plots the dstat-observed transfer rates of the naive (1 thread,
HDD), 16-thread and HDD+Optane (staged) runs together with end-of-
``model.fit`` markers: the staged run sustains the highest bandwidth and
finishes first (~432-439 s), the naive run is in the middle (~515-522 s) and
the 16-thread run finishes last (~632-639 s).  At the benchmark's reduced
dataset scale the absolute times shrink proportionally, so the harness
checks the ordering and the relative spacing of the end-of-fit markers plus
the full-scale projections.
"""

import pytest

from benchmarks.conftest import report, run_once
from repro.tools import PaperComparison, within_factor
from repro.workloads import run_malware_case

SCALE = 0.08
BATCH = 32
MIB = 1 << 20

#: End-of-model.fit markers in Fig. 12 (seconds, full scale).
PAPER_END_OF_FIT = {"naive": 522.0, "threaded": 639.0, "staged": 439.0}


def _run_all():
    naive = run_malware_case(scale=SCALE, batch_size=BATCH, threads=1,
                             profile="epoch", seed=1)
    threaded = run_malware_case(scale=SCALE, batch_size=BATCH, threads=16,
                                profile="epoch", seed=1)
    staged = run_malware_case(scale=SCALE, batch_size=BATCH, threads=1,
                              profile="epoch", staging_threshold=2 * MIB,
                              seed=1)
    return {"naive": naive, "threaded": threaded, "staged": staged}


def test_fig12_dstat_and_end_of_fit(benchmark):
    runs = run_once(benchmark, _run_all)

    # Project the scaled fit times back to full scale for the comparison
    # (identical file-size distribution, 1/SCALE as many files).
    projected = {name: run.fit_time / SCALE for name, run in runs.items()}
    mean_rates = {name: run.dstat.mean_read_rate(ignore_idle=True)
                  for name, run in runs.items()}

    comparisons = [
        PaperComparison("ordering of end-of-fit markers",
                        "staged < naive < threaded",
                        " < ".join(sorted(projected, key=projected.get)),
                        projected["staged"] < projected["naive"] < projected["threaded"]),
        PaperComparison("staged run sustains the highest dstat bandwidth",
                        "HDD+Optane on top",
                        max(mean_rates, key=mean_rates.get),
                        mean_rates["staged"] == max(mean_rates.values())),
        PaperComparison("projected naive end of fit", "~515-522 s",
                        f"{projected['naive']:.0f} s",
                        within_factor(projected["naive"], 522.0, 1.35)),
        PaperComparison("projected threaded end of fit", "~632-639 s",
                        f"{projected['threaded']:.0f} s",
                        within_factor(projected["threaded"], 639.0, 1.35)),
        PaperComparison("projected staged end of fit", "~432-439 s",
                        f"{projected['staged']:.0f} s",
                        within_factor(projected["staged"], 439.0, 1.35)),
    ]
    report("Fig. 12: dstat activity and end-of-fit markers", comparisons)
    assert all(c.matches for c in comparisons)

    # The dstat series actually contains per-second samples covering the run.
    for name, run in runs.items():
        assert len(run.dstat.times) >= int(run.fit_time) - 1
        assert run.dstat.total_read_bytes > 0
