"""Micro-benchmark: result-cache put/get throughput across the transports.

Measures cold ``put`` (conditional-create + canonical encode) and warm
``get`` (probe + validate) cycles per second over each
:class:`~repro.campaign.dist.transport.QueueTransport` backend, in one
process back-to-back so machine noise hits all sides alike — the cache
sibling of ``test_transport_throughput.py``.

This is deduplication *overhead*, not simulation work: the numbers bound
how small a job can be before probing the cache costs more than
recomputing.  Expected shape: memory ≫ filesystem ≫ HTTP (a put/get pair
over the broker is ~2-3 round trips), with the absolute floors asserted
loose enough to survive CI hosts.  Opt-in via ``pytest -m bench``.
"""

import time

import pytest

from repro.campaign import (
    MemoryTransport,
    ResultCache,
    SweepSpec,
    TransportResultCache,
)
from repro.campaign.dist import HttpTransport
from repro.campaign.dist.server import Broker

pytestmark = pytest.mark.bench

#: Cached entries per measured round.
N_ENTRIES = 80


def _jobs(n):
    spec = SweepSpec(name="cache-bench", case="synthetic",
                     base={"rate": 150.0}, grid={"tasks": list(range(n))})
    return spec.expand()


def _record(job):
    return {"result": {"job_id": job.job_id, "case": job.case,
                       "params": dict(job.params), "seed": job.seed,
                       "metrics": {"makespan": 1.0}, "wall_time": 0.01,
                       "error": None}}


def _rates(cache, jobs):
    """(cold puts/s, warm gets/s) over ``cache``."""
    start = time.perf_counter()
    for job in jobs:
        cache.put(job, _record(job))
    put_elapsed = time.perf_counter() - start
    start = time.perf_counter()
    for job in jobs:
        assert cache.get(job) is not None
    get_elapsed = time.perf_counter() - start
    assert cache.hits == len(jobs)
    return len(jobs) / put_elapsed, len(jobs) / get_elapsed


@pytest.fixture(scope="module")
def rates(tmp_path_factory):
    jobs = _jobs(N_ENTRIES)
    root = tmp_path_factory.mktemp("cache-bench")
    out = {"memory": _rates(TransportResultCache(MemoryTransport()), jobs),
           "fs": _rates(ResultCache(root / "fs-cache"), jobs)}
    with Broker() as broker:
        out["http"] = _rates(
            TransportResultCache(HttpTransport(broker.url, retries=1)), jobs)
    return out


def test_report_and_floor_cache_rates(rates, bench_artifact):
    for name, (puts, gets) in sorted(rates.items(), key=lambda kv: -kv[1][1]):
        print(f"\n{name:>7}: {puts:8,.0f} puts/s  {gets:8,.0f} gets/s")
    bench_artifact("cache", {
        key: value for name, (puts, gets) in rates.items()
        for key, value in ((f"{name}_puts_per_s", puts),
                           (f"{name}_gets_per_s", gets))})
    # Conservative floors (the perf-smoke CI leg fails on regression
    # below them): a put is one CAS of a ~400-byte document, a get one
    # read + JSON validate.  The HTTP floor assumes the keep-alive
    # pooled connection — the pre-overhaul connection-per-request client
    # measured ~1.3k/1.7k ops/s locally and sat near it on CI hosts.
    assert rates["memory"][0] > 500.0 and rates["memory"][1] > 500.0
    assert rates["fs"][0] > 100.0 and rates["fs"][1] > 100.0
    assert rates["http"][0] > 200.0 and rates["http"][1] > 200.0


def test_memory_cache_is_the_fast_path(rates):
    """Probing must stay cheap enough for many-tiny-job thread fleets: the
    in-process store must comfortably outpace the network hop."""
    assert rates["memory"][1] > rates["http"][1]
