"""Fig. 5: profiling overhead relative to running without any profiler.

Paper setup: both use cases and both STREAM benchmarks, batch size 128,
10 steps.  The use cases profile automatically via the TensorBoard callback
(whole run); the STREAM benchmarks use the manual method, restarting
profiling every 5 steps.  Reported overheads: TF Profiler alone 0.1-2.1 %;
TF Profiler + tf-Darshan roughly 10-20 % for the use cases and 0.6-7 % for
the STREAM runs, dominated by the post-profiling collection/analysis and
correlated with the number of files processed per unit time.

The twelve bars (4 cases × 3 profiler modes, baselines included) are one
campaign grid executed through the multiprocessing executor.
"""

import pytest

from benchmarks.conftest import report, run_once
from repro.campaign import MultiprocessingExecutor, run_campaign
from repro.tools import PaperComparison, format_table
from repro.workloads import overhead_grid_spec

STEPS = 10
BATCH = 128

#: Paper values (percent change vs. no profiler), Fig. 5.
PAPER = {
    ("imagenet", "tf"): 2.11, ("imagenet", "tfdarshan"): 17.88,
    ("malware", "tf"): 0.98, ("malware", "tfdarshan"): 10.91,
    ("stream_imagenet", "tf"): 0.12, ("stream_imagenet", "tfdarshan"): 7.36,
    ("stream_malware", "tf"): 0.61, ("stream_malware", "tfdarshan"): 0.57,
}

CASES = ("imagenet", "malware", "stream_imagenet", "stream_malware")


def _measure_all():
    spec = overhead_grid_spec(cases=CASES,
                              profilers=("none", "tf", "tfdarshan"),
                              steps=STEPS, batch_size=BATCH, seed=1)
    sweep = run_campaign(spec, executor=MultiprocessingExecutor(processes=4))
    assert sweep.ok, sweep.failures
    overheads = {}
    for case in CASES:
        baseline = sweep.one({"case": case, "profiler": "none"}).metrics["elapsed"]
        for profiler in ("tf", "tfdarshan"):
            elapsed = sweep.one({"case": case,
                                 "profiler": profiler}).metrics["elapsed"]
            overheads[(case, profiler)] = 100.0 * (elapsed / baseline - 1.0)
    return overheads


def test_fig5_profiling_overhead(benchmark):
    overheads = run_once(benchmark, _measure_all)

    rows = [[case, f"{PAPER[(case, 'tf')]:.2f}", f"{overheads[(case, 'tf')]:.2f}",
             f"{PAPER[(case, 'tfdarshan')]:.2f}",
             f"{overheads[(case, 'tfdarshan')]:.2f}"] for case in CASES]
    print()
    print("== Fig. 5: overhead vs no profiler (percent) ==")
    print(format_table(["case", "paper TF", "measured TF",
                        "paper TF+tfD", "measured TF+tfD"], rows))

    comparisons = []
    for case in CASES:
        tf_only = overheads[(case, "tf")]
        tfdarshan = overheads[(case, "tfdarshan")]
        comparisons.append(PaperComparison(
            f"{case}: TF Profiler alone is cheap", "<= ~2.5 %",
            f"{tf_only:.2f} %", -0.5 <= tf_only < 3.5))
        comparisons.append(PaperComparison(
            f"{case}: tf-Darshan adds the larger share", ">= TF-only",
            f"{tfdarshan:.2f} %", tfdarshan >= tf_only - 0.2))
    # Use cases (automatic, full export): the 10-20 % band of the paper.
    for case in ("imagenet", "malware"):
        comparisons.append(PaperComparison(
            f"{case}: use-case overhead band", "10-20 %",
            f"{overheads[(case, 'tfdarshan')]:.2f} %",
            6.0 <= overheads[(case, "tfdarshan")] <= 25.0))
    # STREAM (manual, lite): the 0.6-7 % band.
    for case in ("stream_imagenet", "stream_malware"):
        comparisons.append(PaperComparison(
            f"{case}: manual-profiling overhead band", "0.6-7 %",
            f"{overheads[(case, 'tfdarshan')]:.2f} %",
            0.0 <= overheads[(case, "tfdarshan")] <= 9.0))
    # Correlation with files per unit time: ImageNet > Malware in both modes.
    comparisons.append(PaperComparison(
        "overhead grows with files processed", "ImageNet > Malware",
        f"{overheads[('imagenet', 'tfdarshan')]:.1f} > "
        f"{overheads[('malware', 'tfdarshan')]:.1f}",
        overheads[("imagenet", "tfdarshan")] > overheads[("malware", "tfdarshan")]))
    comparisons.append(PaperComparison(
        "overhead grows with files processed (STREAM)",
        "STREAM(ImageNet) > STREAM(Malware)",
        f"{overheads[('stream_imagenet', 'tfdarshan')]:.1f} > "
        f"{overheads[('stream_malware', 'tfdarshan')]:.1f}",
        overheads[("stream_imagenet", "tfdarshan")]
        > overheads[("stream_malware", "tfdarshan")]))

    report("Fig. 5: qualitative checks", comparisons)
    assert all(c.matches for c in comparisons)
