"""Shared helpers for the benchmark harnesses.

Every benchmark regenerates one table or figure of the paper at a reduced
(documented) scale: it runs the corresponding experiment once under
``pytest-benchmark`` (so the harness also reports how long the simulation
takes to run), prints the paper-vs-measured comparison, and asserts the
qualitative shape the paper reports.  EXPERIMENTS.md records the measured
values.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))


def pytest_collection_modifyitems(items):
    """Benchmarks are opt-in (``-m bench``) unless they claim tier1.

    The figure/table harnesses each run whole (scaled) training campaigns;
    keeping them out of the default selection keeps `pytest -x -q` fast.
    The kernel-throughput micro-benchmark marks itself ``tier1`` so the
    >=2x scheduler-speedup gate runs on every commit.
    """
    for item in items:
        if (str(item.fspath).startswith(_BENCH_DIR)
                and "tier1" not in item.keywords):
            item.add_marker(pytest.mark.bench)


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1, warmup_rounds=0)


def report(title, comparisons):
    """Print a paper-vs-measured table (shown with ``pytest -s``)."""
    from repro.tools import comparison_table

    print()
    print(f"== {title} ==")
    print(comparison_table(comparisons))
