"""Shared helpers for the benchmark harnesses.

Every benchmark regenerates one table or figure of the paper at a reduced
(documented) scale: it runs the corresponding experiment once under
``pytest-benchmark`` (so the harness also reports how long the simulation
takes to run), prints the paper-vs-measured comparison, and asserts the
qualitative shape the paper reports.  EXPERIMENTS.md records the measured
values.

The throughput micro-benchmarks additionally persist machine-readable
artifacts (:func:`write_bench_artifact` → ``BENCH_<name>.json`` with
ops/s, git sha and timestamp) so the perf trajectory is tracked across
PRs instead of living only in terminal scrollback; CI uploads them.
"""

import json
import os
import subprocess
import sys
import time

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))


def pytest_collection_modifyitems(items):
    """Benchmarks are opt-in (``-m bench``) unless they claim tier1.

    The figure/table harnesses each run whole (scaled) training campaigns;
    keeping them out of the default selection keeps `pytest -x -q` fast.
    The kernel-throughput micro-benchmark marks itself ``tier1`` so the
    >=2x scheduler-speedup gate runs on every commit.
    """
    for item in items:
        if (str(item.fspath).startswith(_BENCH_DIR)
                and "tier1" not in item.keywords):
            item.add_marker(pytest.mark.bench)


def _git_sha() -> str:
    """Current commit sha, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            cwd=os.path.dirname(_BENCH_DIR), timeout=10.0, check=False)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def write_bench_artifact(name, results):
    """Persist one benchmark's numbers as ``BENCH_<name>.json``.

    ``results`` is a flat mapping of metric name → ops/s (floats); the
    artifact adds the git sha and a UTC timestamp so a sequence of
    artifacts *is* the perf trajectory.  The destination defaults to the
    benchmarks directory (committed, so the trajectory rides the repo)
    and is overridable via ``REPRO_BENCH_DIR`` for CI artifact staging.
    Returns the path written.
    """
    record = {
        "benchmark": name,
        "git_sha": _git_sha(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "results": {key: round(float(value), 2)
                    for key, value in sorted(results.items())},
    }
    out_dir = os.environ.get("REPRO_BENCH_DIR", _BENCH_DIR)
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


@pytest.fixture(scope="session")
def bench_artifact():
    """The :func:`write_bench_artifact` writer, as a fixture (resolved
    from this conftest regardless of how pytest maps module names)."""
    return write_bench_artifact


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1, warmup_rounds=0)


def report(title, comparisons):
    """Print a paper-vs-measured table (shown with ``pytest -s``)."""
    from repro.tools import comparison_table

    print()
    print(f"== {title} ==")
    print(comparison_table(comparisons))
