"""Ablation A2: automatic (TensorBoard callback) vs manual profiling.

Section IV-C measures the use cases with the automatic TensorBoard callback
(whole-run profile, full TensorBoard export) and the STREAM runs with the
manual method (short windows, in-situ statistics only) and finds the manual
method much cheaper.  This ablation applies both methods to the *same*
workload so the difference is attributable to the profiling mode alone.
"""

import pytest

from benchmarks.conftest import report, run_once
from repro.tools import PaperComparison
from repro.workloads import run_overhead_case

STEPS = 10
BATCH = 64
SCALE = 0.05


def _measure():
    baseline = run_overhead_case("stream_imagenet", "none", steps=STEPS,
                                 batch_size=BATCH, scale=SCALE, seed=1)
    manual = run_overhead_case("stream_imagenet", "tfdarshan", steps=STEPS,
                               batch_size=BATCH, scale=SCALE, seed=1)
    # The automatic mode on the same workload: run the ImageNet use case with
    # the TensorBoard callback (full export) over the same number of samples.
    auto_baseline = run_overhead_case("imagenet", "none", steps=STEPS,
                                      batch_size=BATCH, scale=SCALE, seed=1)
    auto = run_overhead_case("imagenet", "tfdarshan", steps=STEPS,
                             batch_size=BATCH, scale=SCALE, seed=1)
    return {
        "manual_overhead": 100.0 * (manual / baseline - 1.0),
        "auto_overhead": 100.0 * (auto / auto_baseline - 1.0),
    }


def test_ablation_manual_vs_automatic_profiling(benchmark):
    result = run_once(benchmark, _measure)

    comparisons = [
        PaperComparison("manual windows are cheaper than the whole-run callback",
                        "0.6-7 % vs 10-20 %",
                        f"{result['manual_overhead']:.2f} % vs "
                        f"{result['auto_overhead']:.2f} %",
                        result["manual_overhead"] < result["auto_overhead"]),
        PaperComparison("manual overhead band", "0.6-7 %",
                        f"{result['manual_overhead']:.2f} %",
                        0.0 <= result["manual_overhead"] <= 9.0),
        PaperComparison("automatic overhead band", "10-20 %",
                        f"{result['auto_overhead']:.2f} %",
                        5.0 <= result["auto_overhead"] <= 25.0),
    ]
    report("Ablation A2: manual vs automatic profiling", comparisons)
    assert all(c.matches for c in comparisons)
