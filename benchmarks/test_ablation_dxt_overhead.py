"""Ablation A1: overhead with and without DXT detailed tracing.

The paper's discussion notes that "detailed timeline tracing can be
optionally discarded if not required" to reduce overhead.  This ablation
runs the same profiled workload with DXT on and off and quantifies the
saving (it must be positive, because the per-segment collection and
TraceViewer conversion disappear, while the counter-level statistics stay
available).
"""

import pytest

from benchmarks.conftest import report, run_once
from repro.core import TfDarshanOptions
from repro.tools import PaperComparison
from repro.workloads import run_malware_case

SCALE = 0.04
BATCH = 32


def _run_both():
    with_dxt = run_malware_case(
        scale=SCALE, batch_size=BATCH, threads=1, profile="epoch", seed=1,
        tf_darshan_options=TfDarshanOptions(enable_dxt=True, export_mode="full"))
    without_dxt = run_malware_case(
        scale=SCALE, batch_size=BATCH, threads=1, profile="epoch", seed=1,
        tf_darshan_options=TfDarshanOptions(enable_dxt=False, export_mode="full"))
    baseline = run_malware_case(scale=SCALE, batch_size=BATCH, threads=1,
                                profile="none", seed=1)
    return with_dxt, without_dxt, baseline


def test_ablation_dxt_tracing_overhead(benchmark):
    with_dxt, without_dxt, baseline = run_once(benchmark, _run_both)

    overhead_with = 100.0 * (with_dxt.fit_time / baseline.fit_time - 1.0)
    overhead_without = 100.0 * (without_dxt.fit_time / baseline.fit_time - 1.0)

    comparisons = [
        PaperComparison("DXT off reduces tf-Darshan overhead",
                        "lower overhead without detailed tracing",
                        f"{overhead_without:.2f} % vs {overhead_with:.2f} %",
                        overhead_without < overhead_with),
        PaperComparison("counter statistics still available without DXT",
                        "profiling still works",
                        f"{without_dxt.io_profile.posix_opens} opens profiled",
                        without_dxt.io_profile is not None
                        and without_dxt.io_profile.posix_opens > 0),
        PaperComparison("bandwidth estimate unaffected by DXT", "same value",
                        f"{with_dxt.posix_bandwidth / 1e6:.1f} vs "
                        f"{without_dxt.posix_bandwidth / 1e6:.1f} MB/s",
                        abs(with_dxt.posix_bandwidth - without_dxt.posix_bandwidth)
                        / with_dxt.posix_bandwidth < 0.15),
    ]
    report("Ablation A1: DXT tracing overhead", comparisons)
    assert all(c.matches for c in comparisons)
